/**
 * @file
 * The gpulitmus command-line tool — the workflow of the paper's
 * litmus/herd/diy tools behind one binary.
 *
 * Everywhere a test is named, either a .litmus file path or a
 * registry-scenario spec `scenario:<name>[,k=v...]` (e.g.
 * `scenario:spinlock_dot_product,threads=3,fenced=1`) is accepted;
 * `gpulitmus list` enumerates the registry.
 *
 *   gpulitmus run <test> [--chip NAME] [--iterations N]
 *            [--column 1..16]            run a test on a simulated chip
 *   gpulitmus sweep <test> [--chips A,B] [--columns 1-16]
 *            [--jobs N] [--iterations N] [--json FILE]
 *                                        batched campaign over a
 *                                        (chip x column) grid
 *   gpulitmus check <test> [--model NAME]
 *                                        herd-style model evaluation
 *   gpulitmus validate <test...> [--models A,B] [--chips A,B]
 *            [--column 1..16] [--jobs N] [--iterations N]
 *            [--exact] [--budget N] [--json FILE]
 *                                        conformance campaign: run the
 *                                        tests on the simulator AND
 *                                        through the models, join the
 *                                        verdicts (Sec. 5.4); --exact
 *                                        adds an exhaustive
 *                                        exploration per cell so
 *                                        imprecise verdicts upgrade
 *   gpulitmus explore <test...> [--chips A,B|all]
 *            [--column 1..16] [--budget N] [--jobs N] [--models A,B]
 *            [--json FILE]               exhaustive schedule
 *                                        exploration (stateless model
 *                                        checking with DPOR): the
 *                                        exact reachable final-state
 *                                        set per (chip, test), joined
 *                                        against the models; for
 *                                        ~exists tests (application
 *                                        scenarios) a reachable
 *                                        forbidden state is a
 *                                        definitive failure (exit 2)
 *   gpulitmus list [--json] [--corpus DIR]
 *                                        enumerate registry scenarios
 *                                        (with parameters), corpus
 *                                        tests, chips, models and
 *                                        backends
 *   gpulitmus show <file.litmus>         parse and pretty-print
 *   gpulitmus lint <tests...> [--json]   static race & fence
 *                                        analysis (docs/ANALYSIS.md):
 *                                        proven-racy / possibly-racy
 *                                        / proven-ordered per pair
 *                                        with file:line diagnostics;
 *                                        exit 2 on proven-racy
 *   gpulitmus sass <file.litmus> [-O N] [--sdk V] [--maxwell]
 *                                        assemble + optcheck
 *   gpulitmus generate [--max-edges N] [--max-tests N] [--steer]
 *                                        diy-style test generation
 *                                        (stdout)
 *   gpulitmus gen --out DIR [--max-edges N] [--max-tests N]
 *            [--min-edges N] [--no-scopes] [--no-deps] [--steer]
 *                                        write the generated corpus
 *                                        to .litmus files (cycle
 *                                        name, scope tree and final
 *                                        condition included)
 *   gpulitmus chips                      list the chip registry
 *   gpulitmus models                     list the built-in models
 *   gpulitmus serve --socket PATH|--port N [--store DIR] [--jobs N]
 *            [--max-store-bytes N]       persistent validation daemon
 *                                        (docs/SERVE.md): line-JSON
 *                                        requests over a Unix socket
 *                                        or loopback TCP, answers
 *                                        repeated jobs from the
 *                                        durable result store
 *   gpulitmus submit <sweep|validate|explore|scenario|list|stats|
 *            shutdown> [tests...] --socket PATH|--port N
 *            [batch flags] [--json]      submit one request to a
 *                                        running daemon; exit status
 *                                        mirrors the batch command
 *   gpulitmus status --socket PATH|--port N [--watch N] [--json]
 *                                        daemon + store counters and
 *                                        telemetry; --watch N polls
 *                                        every N seconds and redraws,
 *                                        --json emits the raw event
 *                                        lines for scripting
 *
 * `sweep`, `validate` and `explore` also accept --store DIR to reuse
 * the daemon's durable result store without a daemon: the second run
 * of the same campaign answers from disk.
 *
 * Every command accepts `--trace FILE`: spans for the run (requests,
 * jobs, explorations) are written as Chrome trace-event JSON, ready
 * for https://ui.perfetto.dev (docs/OBSERVABILITY.md). GPULITMUS_OBS=0
 * disables all telemetry; results are bit-identical either way.
 *
 * Exit status: 0 on success, 1 on usage/parse errors, 2 when a check
 * fails (optcheck violation, ~exists condition observed or
 * mc-reachable, or an unsound validate/explore cell).
 */

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/race.h"
#include "cat/models.h"
#include "common/strutil.h"
#include "common/version.h"
#include "eval/backend.h"
#include "gen/generator.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "litmus/parser.h"
#include "model/baseline.h"
#include "model/checker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/store.h"
#include "opt/amd.h"
#include "opt/optcheck.h"
#include "opt/ptxas.h"

using namespace gpulitmus;

namespace {

struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    bool
    has(const std::string &name) const
    {
        return flags.count(name) > 0;
    }

    std::string
    get(const std::string &name, const std::string &fallback) const
    {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : it->second;
    }

    int64_t
    getInt(const std::string &name, int64_t fallback) const
    {
        auto it = flags.find(name);
        if (it == flags.end())
            return fallback;
        auto v = parseInt(it->second);
        return v ? *v : fallback;
    }
};

Args
parseArgs(int argc, char **argv, int start)
{
    Args args;
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        if (startsWith(a, "--")) {
            std::string name = a.substr(2);
            std::string value = "true";
            auto eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
            } else if (i + 1 < argc && argv[i + 1][0] != '-') {
                value = argv[++i];
            }
            args.flags[name] = value;
        } else if (startsWith(a, "-O")) {
            args.flags["opt-level"] = a.substr(2);
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

/** A test plus the micro-step floor its source recommends (registry
 * scenarios with spin loops need more headroom than the default). */
struct LoadedTest
{
    litmus::Test test;
    int minMicroSteps = 0;
};

/**
 * Resolve one positional test argument: a registry-scenario spec
 * ("scenario:<name>[,k=v...]") or a .litmus file path. Prints the
 * diagnostic and returns nullopt on failure.
 */
std::optional<LoadedTest>
loadTest(const std::string &arg)
{
    if (scenario::isSpec(arg)) {
        std::string error;
        auto built = scenario::buildSpec(arg, &error);
        if (!built) {
            std::cerr << "error: " << error << "\n";
            return std::nullopt;
        }
        return LoadedTest{std::move(built->test),
                          built->maxMicroSteps};
    }
    std::ifstream in(arg);
    if (!in) {
        std::cerr << "error: cannot open '" << arg << "'\n";
        return std::nullopt;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    litmus::ParseError err;
    auto test = litmus::parseTest(buffer.str(), &err);
    if (!test) {
        std::cerr << "error: " << arg;
        if (err.line > 0)
            std::cerr << ":" << err.line;
        std::cerr << ": " << err.message << "\n";
        return std::nullopt;
    }
    return LoadedTest{std::move(*test), 0};
}

/**
 * Resolve a model backend id, or fail hard: an unknown --model name
 * is a usage error (exit 1) with the valid names listed, never a
 * silent fallback. Returns null after printing the error.
 */
std::shared_ptr<const eval::AxiomBackend>
modelBackendByName(const std::string &name)
{
    std::string error;
    auto backend = eval::modelBackendByName(name, &error);
    if (!backend)
        std::cerr << "error: " << error << "\n";
    return backend;
}

/**
 * Open the --store directory when the flag is present: the durable
 * result store (serve/store.h) slots in behind the engine cache, so a
 * repeated campaign answers from disk. nullptr without the flag;
 * prints the error and sets `failed` when the flag is present but the
 * store cannot open (a requested store that silently vanishes would
 * turn "instant warm run" into a full recompute).
 */
std::unique_ptr<serve::ResultStore>
openStoreFlag(const Args &args, bool *failed)
{
    *failed = false;
    if (!args.has("store"))
        return nullptr;
    serve::StoreOptions opts;
    opts.maxBytes =
        static_cast<uint64_t>(args.getInt("max-store-bytes", 0));
    // Offline CLI use: skip the per-flush fsync; torn-tail recovery
    // covers a crash, and the OS flushes on exit anyway.
    opts.syncOnFlush = false;
    std::string error;
    auto store = serve::ResultStore::open(args.get("store", ""),
                                          opts, &error);
    if (!store) {
        std::cerr << "error: " << error << "\n";
        *failed = true;
        return nullptr;
    }
    return store;
}

/** One-line store epilogue: how much of the campaign came from disk
 * and what was added (the cold/warm signal BENCH_serve.json gates). */
void
printStoreStats(const serve::ResultStore &store)
{
    serve::StoreStats s = store.stats();
    std::cout << "store " << store.dir() << ": " << s.hits
              << " hits, " << s.misses << " misses, " << s.appends
              << " new records (" << store.size() << " total)\n";
}

int
cmdRun(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus run <test> [--chip"
                     " NAME] [--iterations N] [--column 1..16]\n";
        return 1;
    }
    auto loaded = loadTest(args.positional[0]);
    if (!loaded)
        return 1;

    harness::RunConfig cfg;
    cfg.iterations = static_cast<uint64_t>(args.getInt(
        "iterations",
        static_cast<int64_t>(harness::defaultIterations())));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 0x6c69));
    cfg.maxMicroSteps =
        std::max(cfg.maxMicroSteps, loaded->minMicroSteps);
    int column = static_cast<int>(args.getInt("column", 16));
    cfg.inc = sim::Incantations::fromColumn(column);
    const sim::ChipProfile &chip =
        sim::chip(args.get("chip", "Titan"));

    litmus::Test to_run = loaded->test;
    if (chip.isAmd()) {
        auto compiled = opt::amdCompile(to_run, chip);
        for (const auto &q : compiled.quirks)
            std::cout << "compile note: " << q << "\n";
        if (compiled.miscompiled) {
            std::cout << "test miscompiled for " << chip.shortName
                      << ": result is n/a\n";
            return 2;
        }
        to_run = compiled.compiled;
    }

    std::cout << "chip: " << chip.vendor << " " << chip.chipName
              << "; incantations: " << cfg.inc.str() << "; "
              << cfg.iterations << " iterations\n\n";
    litmus::Histogram hist = harness::run(chip, to_run, cfg);
    std::cout << hist.str();
    if (to_run.quantifier == litmus::Quantifier::NotExists &&
        hist.observed() > 0)
        return 2;
    return 0;
}

/** Parse a --columns spec: "1-16", "9", or "1,5,9". */
std::vector<int>
parseColumns(const std::string &spec)
{
    std::vector<int> out;
    for (const auto &part : split(spec, ',')) {
        auto dash = part.find('-');
        if (dash != std::string::npos) {
            auto lo = parseInt(part.substr(0, dash));
            auto hi = parseInt(part.substr(dash + 1));
            // Bounds-check before expanding so a typo'd range cannot
            // balloon the list.
            if (!lo || !hi || *lo > *hi || *lo < 1 || *hi > 16)
                return {};
            for (int64_t c = *lo; c <= *hi; ++c)
                out.push_back(static_cast<int>(c));
        } else {
            auto c = parseInt(part);
            if (!c || *c < 1 || *c > 16)
                return {};
            out.push_back(static_cast<int>(*c));
        }
    }
    return out;
}

int
cmdSweep(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus sweep <test> [--chips"
                     " A,B] [--columns 1-16] [--jobs N]"
                     " [--iterations N] [--seed S] [--json FILE]"
                     " [--store DIR]\n";
        return 1;
    }
    auto loaded = loadTest(args.positional[0]);
    if (!loaded)
        return 1;
    const litmus::Test &test = loaded->test;

    std::vector<int> columns =
        parseColumns(args.get("columns", "1-16"));
    if (columns.empty()) {
        std::cerr << "error: invalid --columns '"
                  << args.get("columns", "1-16")
                  << "' (want e.g. 1-16, 9 or 1,5,9)\n";
        return 1;
    }

    harness::RunConfig cfg;
    cfg.iterations = static_cast<uint64_t>(args.getInt(
        "iterations",
        static_cast<int64_t>(harness::defaultIterations())));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 0x6c69));
    cfg.maxMicroSteps =
        std::max(cfg.maxMicroSteps, loaded->minMicroSteps);

    // Per-chip test compilation (AMD chips run what their OpenCL
    // compiler produces); miscompiled chips drop out of the grid.
    harness::Campaign campaign;
    campaign.base(cfg);
    std::vector<std::string> skipped;
    for (const auto &name : split(args.get("chips", "Titan"), ',')) {
        const sim::ChipProfile &chip = sim::chip(trim(name));
        litmus::Test to_run = test;
        if (chip.isAmd()) {
            auto compiled = opt::amdCompile(to_run, chip);
            for (const auto &q : compiled.quirks)
                std::cerr << "compile note (" << chip.shortName
                          << "): " << q << "\n";
            if (compiled.miscompiled) {
                skipped.push_back(chip.shortName);
                continue;
            }
            to_run = compiled.compiled;
        }
        for (int col : columns) {
            harness::Job job =
                harness::Job::fromConfig(chip, to_run, cfg);
            job.inc = sim::Incantations::fromColumn(col);
            campaign.add(std::move(job));
        }
    }

    bool store_failed = false;
    auto store = openStoreFlag(args, &store_failed);
    if (store_failed)
        return 1;

    harness::EngineOptions eopts;
    eopts.threads = static_cast<int>(args.getInt("jobs", 0));
    eopts.store = store.get();
    harness::Engine engine(eopts);

    harness::TableSink table("chip", harness::TableSink::byChip(),
                             harness::TableSink::byColumn());
    harness::JsonSink json;
    std::vector<harness::ResultSink *> sinks{&table};
    if (args.has("json"))
        sinks.push_back(&json);

    std::cout << "sweep: " << test.name << ", " << cfg.iterations
              << " iterations/cell, " << engine.threads()
              << " worker threads\n\n";
    auto results = campaign.run(engine, sinks);
    table.render().print(std::cout);
    for (const auto &name : skipped)
        std::cout << name << ": miscompiled (n/a)\n";
    if (store) {
        store->flush();
        printStoreStats(*store);
    }

    if (args.has("json")) {
        std::string path = args.get("json", "sweep.json");
        if (path == "true") // bare --json
            path = "sweep.json";
        if (!json.writeFile(path)) {
            std::cerr << "error: cannot write '" << path << "'\n";
            return 1;
        }
        std::cout << "\nwrote " << path << " (" << json.size()
                  << " cells)\n";
    }

    // Exit 2 when a ~exists condition was observed anywhere in the
    // grid, mirroring `run`.
    if (test.quantifier == litmus::Quantifier::NotExists) {
        for (const auto &r : results) {
            if (r.hist.observed() > 0)
                return 2;
        }
    }
    return 0;
}

int
cmdCheck(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus check <test>"
                     " [--model ptx|rmo|sc|tso|operational]\n";
        return 1;
    }
    auto loaded = loadTest(args.positional[0]);
    if (!loaded)
        return 1;
    const litmus::Test &test = loaded->test;
    // Same scope policy as validate/explore and AxiomBackend: the
    // models have nothing to say about .ca/volatile accesses, and a
    // looped program would not enumerate in useful time.
    if (!model::inModelScope(test)) {
        std::cerr << "error: '" << args.positional[0]
                  << "' is outside the model scope (.ca/volatile/"
                     "loops, Sec. 5.5); use the sim or mc backends\n";
        return 1;
    }
    auto backend = modelBackendByName(args.get("model", "ptx"));
    if (!backend)
        return 1;
    const cat::Model &m = backend->model();
    model::Checker checker(m);
    model::Verdict v = checker.check(test);
    std::cout << "model " << m.name() << ": " << v.numCandidates
              << " candidates, " << v.numAllowed << " allowed\n";
    std::cout << "condition "
              << litmus::toString(test.quantifier) << " ("
              << test.condition.str() << "): " << v.verdict << "\n";
    std::cout << "allowed outcomes:\n";
    for (const auto &key : v.allowedKeys)
        std::cout << "  " << key << "\n";
    if (!v.forbiddenKeys.empty()) {
        std::cout << "forbidden outcomes:\n";
        for (const auto &key : v.forbiddenKeys)
            std::cout << "  " << key << "\n";
    }
    if (v.conditionSatisfiable && v.witness) {
        std::cout << "witness execution:\n" << v.witness->str();
    } else if (v.forbiddenWitness) {
        std::cout << "closest forbidden execution (killed by "
                  << v.forbiddingCheck << "):\n"
                  << v.forbiddenWitness->str();
    }
    return 0;
}

/**
 * The Sec. 5.4 workflow as one campaign: run every test on every chip
 * through the simulator AND through the requested models, join the
 * histograms against the verdicts, and classify each cell as sound /
 * unsound / imprecise. Exit 2 when any cell is unsound.
 */
int
cmdValidate(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus validate <file.litmus...>"
                     " [--models A,B] [--chips A,B] [--column 1..16]"
                     " [--jobs N] [--iterations N] [--seed S]"
                     " [--exact] [--budget N] [--json FILE]"
                     " [--store DIR]\n";
        return 1;
    }

    // Resolve the model backends up front: a typo'd --models entry is
    // a usage error before any simulation runs.
    std::vector<std::string> models;
    for (const auto &name : split(args.get("models", "ptx"), ',')) {
        std::string id = trim(name);
        if (id == harness::kSimBackend) {
            std::cerr << "error: --models lists model backends; the"
                         " simulator side is implicit\n";
            return 1;
        }
        if (!modelBackendByName(id))
            return 1;
        models.push_back(id);
    }

    int column = static_cast<int>(args.getInt("column", 16));
    harness::RunConfig cfg;
    cfg.iterations = static_cast<uint64_t>(args.getInt(
        "iterations",
        static_cast<int64_t>(harness::defaultIterations())));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 0x6c69));
    cfg.inc = sim::Incantations::fromColumn(column);

    // Default chip set: the Nvidia chips of the paper's result rows
    // (the models target PTX; AMD chips can be named explicitly and
    // run what their OpenCL compiler produces).
    std::vector<sim::ChipProfile> chips;
    if (args.has("chips")) {
        for (const auto &name : split(args.get("chips", ""), ','))
            chips.push_back(sim::chip(trim(name)));
    } else {
        for (const auto &c : sim::resultChips()) {
            if (c.isNvidia())
                chips.push_back(c);
        }
    }

    // Load the corpus; tests outside the model's scope (.ca /
    // volatile accesses, Sec. 5.5) are excluded exactly as in the
    // paper.
    size_t out_of_scope = 0;
    std::vector<LoadedTest> tests;
    for (const auto &path : args.positional) {
        auto loaded = loadTest(path);
        if (!loaded)
            return 1;
        if (!model::inModelScope(loaded->test)) {
            std::cerr << "note: " << path
                      << " is outside the model scope (.ca/volatile/"
                         "loops, Sec. 5.5); skipped\n";
            ++out_of_scope;
            continue;
        }
        tests.push_back(std::move(*loaded));
    }
    if (tests.empty()) {
        std::cerr << "error: no in-scope tests to validate\n";
        return 1;
    }

    // Build the mixed-backend job list. Each chip runs the test as it
    // would actually execute it (AMD chips compile through the
    // simulated OpenCL compiler), and the model jobs carry the same
    // compiled text so the conformance join compares like with like.
    harness::Campaign campaign;
    std::vector<std::string> skipped;
    for (const auto &lt : tests) {
        const litmus::Test &test = lt.test;
        harness::RunConfig test_cfg = cfg;
        test_cfg.maxMicroSteps =
            std::max(cfg.maxMicroSteps, lt.minMicroSteps);
        for (const auto &chip : chips) {
            std::vector<std::string> quirks;
            auto to_run = eval::compileForChip(test, chip, &quirks);
            for (const auto &q : quirks)
                std::cerr << "compile note (" << chip.shortName
                          << "): " << q << "\n";
            if (!to_run) {
                skipped.push_back(test.name + " on " + chip.shortName);
                continue;
            }
            harness::Job sim_job =
                harness::Job::fromConfig(chip, *to_run, test_cfg);
            sim_job.label = test.name;
            campaign.add(sim_job);
            if (args.has("exact")) {
                // One exhaustive exploration per simulated cell, so
                // the conformance join can upgrade imprecise
                // verdicts to rare/unreachable.
                harness::Job mc_job = sim_job;
                mc_job.backend = harness::kMcBackend;
                mc_job.iterations = static_cast<uint64_t>(
                    args.getInt("budget", 1 << 20));
                campaign.add(std::move(mc_job));
            }
            for (const auto &model : models) {
                harness::Job model_job = sim_job;
                model_job.backend = model;
                model_job.label = test.name;
                campaign.add(std::move(model_job));
            }
        }
    }

    auto jobs = campaign.jobs();
    if (jobs.empty()) {
        // Every (test, chip) cell dropped out as miscompiled: there
        // is nothing to validate, which must not read as success.
        std::cerr << "error: nothing to validate — every cell was"
                     " miscompiled:\n";
        for (const auto &cell : skipped)
            std::cerr << "  " << cell << "\n";
        return 1;
    }

    bool store_failed = false;
    auto store = openStoreFlag(args, &store_failed);
    if (store_failed)
        return 1;

    eval::EngineOptions eopts;
    eopts.threads = static_cast<int>(args.getInt("jobs", 0));
    eopts.store = store.get();
    eval::Engine engine(eopts);

    std::cout << "validate: " << tests.size() << " tests";
    if (out_of_scope > 0)
        std::cout << " (+" << out_of_scope << " out of scope)";
    std::cout << ", " << chips.size() << " chips, models "
              << join(models, ",") << ", " << cfg.iterations
              << " iterations/cell, column " << column << ", "
              << engine.threads() << " worker threads\n\n";

    eval::ConformanceSink conformance;
    // The denominator is computed jobs: cells served from the cache
    // or deduped onto a batch-mate (model cells across chips) are
    // never reported, so this count is below the summary's cell
    // count by design.
    auto progress = [](size_t done, size_t total,
                       const eval::EvalResult &) {
        if (done % 50 == 0 || done == total)
            std::cerr << "  computed " << done << "/" << total
                      << " jobs\r";
    };
    engine.run(jobs, {&conformance}, progress);
    std::cerr << "\n";

    conformance.summary().print(std::cout);
    const auto &cells = conformance.cells();
    size_t unsound = 0;
    for (const auto &cell : cells) {
        if (cell.kind == eval::Conformance::Unsound) {
            ++unsound;
            std::cout << "UNSOUND: " << cell.test << " on "
                      << cell.chip << " (column " << cell.column
                      << ", model " << cell.model
                      << "): observed-but-forbidden";
            for (const auto &key : cell.violations)
                std::cout << " '" << key << "'";
            std::cout << "\n";
        }
        for (const auto &key : cell.inconsistent)
            std::cout << "INCONSISTENT: " << cell.test << " on "
                      << cell.chip << ": sampled '" << key
                      << "' escaped the exhaustive exploration\n";
    }
    for (const auto &cell : skipped)
        std::cout << cell << ": miscompiled (n/a)\n";

    std::cout << "\n" << cells.size() << " cells: "
              << conformance.soundCells() << " sound, " << unsound
              << " unsound, " << conformance.impreciseCells()
              << " imprecise";
    if (args.has("exact")) {
        std::cout << ", " << conformance.rareCells() << " rare, "
                  << conformance.unreachableCells()
                  << " unreachable, " << conformance.boundedCells()
                  << " bounded";
    }
    std::cout << "\n";

    if (store) {
        store->flush();
        printStoreStats(*store);
    }

    // An explorer/simulator divergence is as fatal as unsoundness:
    // the tool's own invariant (sampled outcomes stay inside the
    // exact set) failed, so nothing it printed can be trusted.
    bool failed = unsound > 0 || conformance.inconsistentCells() > 0;
    if (args.has("json")) {
        std::string path = args.get("json", "validate.json");
        if (path == "true") // bare --json
            path = "validate.json";
        if (!conformance.writeFile(path)) {
            std::cerr << "error: cannot write '" << path << "'\n";
            // An unsound model still outranks the IO error: exit 2
            // is the documented signal CI keys on.
            return failed ? 2 : 1;
        }
        std::cout << "wrote " << path << "\n";
    }
    return failed ? 2 : 0;
}

/**
 * Stateless model checking of the corpus: one exhaustive exploration
 * per (test, chip) cell, printing the exact reachable final-state
 * set, then the conformance join against the requested models. A
 * reachable-but-forbidden state is a definitive unsoundness (exit 2);
 * an allowed-but-unreachable one is definitive model slack.
 */
int
cmdExplore(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus explore <test...>"
                     " [--chips A,B|all] [--column 1..16]"
                     " [--budget N] [--shards N] [--jobs N]"
                     " [--models A,B|none]"
                     " [--json FILE] [--store DIR]\n";
        return 1;
    }

    std::vector<sim::ChipProfile> chips;
    std::string chips_arg = args.get("chips", "Titan");
    if (chips_arg == "all") {
        chips = sim::allChips();
    } else {
        for (const auto &name : split(chips_arg, ','))
            chips.push_back(sim::chip(trim(name)));
    }

    std::vector<std::string> models;
    std::string models_arg = args.get("models", "ptx");
    if (models_arg != "none") {
        for (const auto &name : split(models_arg, ',')) {
            std::string id = trim(name);
            if (!modelBackendByName(id))
                return 1;
            models.push_back(id);
        }
    }

    int column = static_cast<int>(args.getInt("column", 16));
    harness::RunConfig cfg;
    cfg.inc = sim::Incantations::fromColumn(column);
    cfg.iterations =
        static_cast<uint64_t>(args.getInt("budget", 1 << 20));
    // Parallel exploration width: --budget stays the *per-shard*
    // replay budget, so `--shards 4` owns a 4x pool — the knob that
    // upgrades "bounded" lock scenarios to proofs. --shards 1 (or
    // GPULITMUS_MC_SHARDS unset) is the sequential explorer.
    int shards = static_cast<int>(
        args.getInt("shards", harness::defaultShards()));
    if (shards < 1) {
        std::cerr << "error: --shards must be >= 1\n";
        return 1;
    }

    harness::Campaign campaign;
    std::vector<std::string> skipped;
    size_t out_of_scope = 0;
    for (const auto &path : args.positional) {
        auto loaded = loadTest(path);
        if (!loaded)
            return 1;
        const litmus::Test &test = loaded->test;
        harness::RunConfig test_cfg = cfg;
        test_cfg.maxMicroSteps =
            std::max(cfg.maxMicroSteps, loaded->minMicroSteps);
        // Out-of-scope tests (.ca/volatile/loops, Sec. 5.5) still
        // explore —
        // the reachable set is a property of the machine — but skip
        // the model join, exactly as `validate` skips them.
        bool in_scope = model::inModelScope(test);
        if (!in_scope)
            ++out_of_scope;
        for (const auto &chip : chips) {
            std::vector<std::string> quirks;
            auto to_run = eval::compileForChip(test, chip, &quirks);
            for (const auto &q : quirks)
                std::cerr << "compile note (" << chip.shortName
                          << "): " << q << "\n";
            if (!to_run) {
                skipped.push_back(test.name + " on " +
                                  chip.shortName);
                continue;
            }
            harness::Job mc_job =
                harness::Job::fromConfig(chip, *to_run, test_cfg);
            mc_job.backend = harness::kMcBackend;
            mc_job.shards = shards;
            mc_job.label = test.name;
            campaign.add(mc_job);
            if (in_scope) {
                for (const auto &model : models) {
                    harness::Job model_job = mc_job;
                    model_job.backend = model;
                    campaign.add(std::move(model_job));
                }
            }
        }
    }

    auto jobs = campaign.jobs();
    if (jobs.empty()) {
        std::cerr << "error: nothing to explore — every cell was"
                     " miscompiled:\n";
        for (const auto &cell : skipped)
            std::cerr << "  " << cell << "\n";
        return 1;
    }

    bool store_failed = false;
    auto store = openStoreFlag(args, &store_failed);
    if (store_failed)
        return 1;

    eval::EngineOptions eopts;
    eopts.threads = static_cast<int>(args.getInt("jobs", 0));
    eopts.store = store.get();
    eval::Engine engine(eopts);

    std::cout << "explore: " << args.positional.size() << " tests";
    if (out_of_scope > 0)
        std::cout << " (" << out_of_scope
                  << " outside the model scope)";
    std::cout << ", " << chips.size() << " chips, budget "
              << cfg.iterations << " replays/cell"
              << (shards > 1 ? " x " + std::to_string(shards) +
                                   " shards"
                             : std::string())
              << ", column " << column
              << ", models "
              << (models.empty() ? std::string("none")
                                 : join(models, ","))
              << ", " << engine.threads() << " worker threads\n\n";

    eval::ConformanceSink conformance;
    eval::JsonSink json;
    std::vector<eval::EvalSink *> sinks{&conformance};
    if (args.has("json"))
        sinks.push_back(&json);
    auto progress = [](size_t done, size_t total,
                       const eval::EvalResult &) {
        if (done % 10 == 0 || done == total)
            std::cerr << "  computed " << done << "/" << total
                      << " jobs\r";
    };
    auto results = engine.run(jobs, sinks, progress);
    std::cerr << "\n";

    // A reachable satisfying state of a ~exists test (an application
    // scenario's "wrong result") is a definitive failure: the
    // explorer exhibits a concrete schedule, no sampling luck
    // involved. Unreachability claims are graded by completeness:
    // proven (complete), proven for all terminating executions
    // (fairComplete — spin-loop scenarios), or merely unobserved
    // within the budget.
    size_t bounded = 0;
    size_t forbidden_reachable = 0;
    for (const auto &r : results) {
        if (!r.hasExact() || r.fromCache)
            continue;
        const mc::ExploreResult &x = *r.exact;
        if (!x.complete && !x.fairComplete)
            ++bounded;
        std::cout << r.label() << "@" << x.chipName << " (column "
                  << x.column << "): " << x.finals.size()
                  << " reachable states, "
                  << (x.complete       ? "complete"
                      : x.fairComplete ? "complete (fair schedules)"
                                       : "BOUNDED")
                  << ", " << x.stats.replays << " replays, "
                  << x.stats.distinctStates << " states, "
                  << x.stats.sleepSkips << " sleep skips\n";
        for (const auto &[key, weight] : x.finals) {
            std::cout << "    " << weight << "  " << key
                      << (x.satisfying.count(key) ? "  *" : "")
                      << "\n";
        }
        // Bounded verdicts get their burn-down so they are
        // diagnosable: which budget bit and how the search was shaped
        // when it did (the budget comes from the job so store-served
        // cells report it too — their advisory result fields are 0).
        if (!x.complete && !x.fairComplete) {
            uint64_t budget = r.job->iterations;
            std::cout << "  bounded after " << x.stats.replays << "/"
                      << budget << " replays ("
                      << (budget ? x.stats.replays * 100 / budget : 0)
                      << "%), " << x.stats.distinctStates
                      << " states cached, deepest frontier "
                      << x.stats.peakDepth << ", "
                      << x.stats.resumes << " resumes\n";
        }
        if (r.job->test.quantifier != litmus::Quantifier::NotExists)
            continue;
        if (!x.satisfying.empty()) {
            ++forbidden_reachable;
            std::cout << "  FORBIDDEN-REACHABLE (definitive):";
            for (const auto &key : x.satisfying)
                std::cout << " '" << key << "'";
            std::cout << "\n";
        } else if (x.complete) {
            std::cout << "  forbidden condition exact-unreachable:"
                         " proven over every schedule\n";
        } else if (x.fairComplete) {
            std::cout << "  forbidden condition exact-unreachable"
                         " for every terminating execution (spin"
                         " loops explored modulo the runaway"
                         " guard)\n";
        } else {
            std::cout << "  forbidden condition not reached within"
                         " the budget (no proof)\n";
        }
    }

    size_t unsound = 0;
    if (!models.empty()) {
        std::cout << "\n";
        conformance.summary().print(std::cout);
        for (const auto &cell : conformance.cells()) {
            if (cell.kind != eval::Conformance::Unsound)
                continue;
            ++unsound;
            std::cout << "UNSOUND: " << cell.test << " on "
                      << cell.chip << " (model " << cell.model
                      << "): reachable-but-forbidden";
            for (const auto &key : cell.violations)
                std::cout << " '" << key << "'";
            std::cout << "\n";
        }
    }
    for (const auto &cell : skipped)
        std::cout << cell << ": miscompiled (n/a)\n";
    if (bounded > 0)
        std::cout << bounded << " cells hit the budget (bounded"
                     " verdicts); raise --budget for exact sets\n";
    if (forbidden_reachable > 0)
        std::cout << forbidden_reachable
                  << " cells reach their forbidden condition\n";
    if (store) {
        store->flush();
        printStoreStats(*store);
    }

    bool failed = unsound > 0 || forbidden_reachable > 0;
    if (args.has("json")) {
        std::string path = args.get("json", "explore.json");
        if (path == "true") // bare --json
            path = "explore.json";
        if (!json.writeFile(path)) {
            std::cerr << "error: cannot write '" << path << "'\n";
            return failed ? 2 : 1;
        }
        std::cout << "wrote " << path << " (" << json.size()
                  << " cells)\n";
    }
    return failed ? 2 : 0;
}

int
cmdShow(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus show <test>\n";
        return 1;
    }
    auto loaded = loadTest(args.positional[0]);
    if (!loaded)
        return 1;
    std::cout << loaded->test.str();
    return 0;
}

/**
 * `gpulitmus lint <tests...> [--json]` — static race & fence
 * analysis (docs/ANALYSIS.md). Classifies every cross-thread
 * conflicting pair as proven-racy / possibly-racy / proven-ordered
 * with file:line diagnostics; exit 2 when any pair is proven racy.
 */
int
cmdLint(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus lint"
                     " <file.litmus|scenario:name[,k=v...]>..."
                     " [--json]\n";
        return 1;
    }
    bool json = args.has("json");
    bool any_proven = false;
    std::string jout = "[";
    for (size_t i = 0; i < args.positional.size(); ++i) {
        const std::string &arg = args.positional[i];
        auto loaded = loadTest(arg);
        if (!loaded)
            return 1;
        analysis::Report rep = analysis::analyze(loaded->test);
        any_proven = any_proven || rep.anyProven();
        if (json) {
            if (i)
                jout += ",";
            jout += "{\"source\":\"" + jsonEscape(arg) +
                    "\",\"report\":" + rep.json() + "}";
        } else {
            std::cout << arg << ": " << rep.str();
        }
    }
    if (json)
        std::cout << jout << "]\n";
    return any_proven ? 2 : 0;
}

int
cmdSass(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus sass <file.litmus> [-O N]"
                     " [--sdk V] [--maxwell]\n";
        return 1;
    }
    auto loaded = loadTest(args.positional[0]);
    if (!loaded)
        return 1;
    opt::PtxasOptions opts;
    opts.optLevel = static_cast<int>(args.getInt("opt-level", 3));
    opts.sdkVersion = args.get("sdk", "6.0");
    opts.targetMaxwell = args.has("maxwell");
    opt::SassProgram sass = opt::assemble(loaded->test, opts);
    std::cout << sass.disassemble();
    auto check = opt::optcheck(sass);
    std::cout << check.str();
    return check.ok ? 0 : 2;
}

int
cmdGenerate(const Args &args)
{
    gen::GeneratorOptions opts;
    opts.maxEdges = static_cast<int>(args.getInt("max-edges", 4));
    opts.maxTests =
        static_cast<size_t>(args.getInt("max-tests", 20));
    opts.steer = args.has("steer");
    auto tests = gen::generate(gen::defaultPool(), opts);
    for (const auto &g : tests) {
        std::cout << "(* cycle: " << g.cycleName << " *)\n";
        if (g.predictedRacyPairs >= 0)
            std::cout << "(* predicted racy pairs: "
                      << g.predictedRacyPairs << " *)\n";
        std::cout << g.test.str() << "\n";
    }
    std::cerr << tests.size() << " tests generated\n";
    return 0;
}

/** File-system-safe name for a generated cycle: spaces join with '+'
 * (diy style); anything else unusual becomes '_'. */
std::string
cycleFileName(const std::string &cycle)
{
    std::string out;
    for (char c : cycle) {
        if (c == ' ')
            out += '+';
        else if (std::isalnum(static_cast<unsigned char>(c)) ||
                 c == '.' || c == '-' || c == '+' || c == '_')
            out += c;
        else
            out += '_';
    }
    return out;
}

/**
 * The generated corpus as files: every cycle the generator closes
 * becomes DIR/<cycle>.litmus — cycle name (header + comment), scope
 * tree and final condition included — ready for `sweep`, `validate`
 * and `explore`.
 */
int
cmdGen(const Args &args)
{
    std::string out_dir = args.get("out", "generated-tests");
    gen::GeneratorOptions opts;
    opts.minEdges = static_cast<int>(args.getInt("min-edges", 3));
    opts.maxEdges = static_cast<int>(args.getInt("max-edges", 4));
    opts.maxTests =
        static_cast<size_t>(args.getInt("max-tests", 50));
    bool scopes = !args.has("no-scopes");
    bool deps = !args.has("no-deps");
    opts.steer = args.has("steer");
    auto tests = gen::generate(gen::defaultPool(scopes, deps), opts);

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::cerr << "error: cannot create '" << out_dir
                  << "': " << ec.message() << "\n";
        return 1;
    }

    size_t written = 0;
    for (const auto &g : tests) {
        std::string path =
            out_dir + "/" + cycleFileName(g.cycleName) + ".litmus";
        std::ofstream f(path);
        if (!f) {
            std::cerr << "error: cannot write '" << path << "'\n";
            return 1;
        }
        f << "(* cycle: " << g.cycleName << " *)\n";
        if (g.predictedRacyPairs >= 0)
            f << "(* predicted racy pairs: " << g.predictedRacyPairs
              << " *)\n";
        f << g.test.str();
        ++written;
        std::cout << path << "\n";
    }
    std::cerr << written << " tests written to " << out_dir << "\n";
    return 0;
}

/**
 * Discoverability in one place: registry scenarios (with their
 * parameters and defaults), the built-in paper-library corpus, any
 * on-disk .litmus corpus, the chip registry, the model registry and
 * the evaluation backends. --json emits one machine-readable object
 * so tooling never has to scrape the human listing.
 */
int
cmdList(const Args &args)
{
    std::string corpus_dir = args.get("corpus", "litmus-tests");
    std::vector<std::string> corpus_files;
    std::error_code ec;
    if (std::filesystem::is_directory(corpus_dir, ec)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(corpus_dir, ec)) {
            if (entry.path().extension() == ".litmus")
                corpus_files.push_back(entry.path().string());
        }
        std::sort(corpus_files.begin(), corpus_files.end());
    }

    if (args.has("json")) {
        // The ABI generation leads: it is what decides whether a
        // result store (or a serve daemon) built by another binary is
        // compatible with this one.
        std::string out = "{\"abi\":\"";
        out += kAbiVersionString;
        out += "\",\"abi_version\":" + std::to_string(kAbiVersion);
        out += ",\"scenarios\":[";
        bool first = true;
        for (const auto &s : scenario::all()) {
            if (!first)
                out += ",";
            first = false;
            out += "{\"name\":\"" + jsonEscape(s.name) + "\",";
            out += "\"spec\":\"scenario:" + jsonEscape(s.name) +
                   "\",";
            out += "\"summary\":\"" + jsonEscape(s.summary) + "\",";
            out += "\"paper\":\"" + jsonEscape(s.paperRef) + "\",";
            out += "\"max_micro_steps\":" +
                   std::to_string(s.maxMicroSteps) + ",";
            out += "\"params\":[";
            bool pfirst = true;
            for (const auto &p : s.params) {
                if (!pfirst)
                    out += ",";
                pfirst = false;
                out += "{\"name\":\"" + jsonEscape(p.name) +
                       "\",\"default\":" +
                       std::to_string(p.defaultValue) +
                       ",\"help\":\"" + jsonEscape(p.help) + "\"}";
            }
            out += "]}";
        }
        out += "],\"library\":[";
        first = true;
        for (const auto &t : litmus::paperlib::allTests()) {
            if (!first)
                out += ",";
            first = false;
            out += "{\"id\":\"" + jsonEscape(t.id) +
                   "\",\"section\":\"" + jsonEscape(t.section) +
                   "\"}";
        }
        out += "],\"corpus\":[";
        first = true;
        for (const auto &f : corpus_files) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + jsonEscape(f) + "\"";
        }
        out += "],\"chips\":[";
        first = true;
        for (const auto &c : sim::allChips()) {
            if (!first)
                out += ",";
            first = false;
            out += "{\"name\":\"" + jsonEscape(c.shortName) +
                   "\",\"vendor\":\"" + jsonEscape(c.vendor) +
                   "\",\"chip\":\"" + jsonEscape(c.chipName) + "\"}";
        }
        out += "],\"models\":[";
        first = true;
        for (const auto &m : eval::builtinModelNames()) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + jsonEscape(m) + "\"";
        }
        out += "],\"backends\":[";
        first = true;
        for (const auto &b : eval::builtinBackendNames()) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + jsonEscape(b) + "\"";
        }
        out += "]}";
        std::cout << out << "\n";
        return 0;
    }

    std::cout << "scenarios (run as scenario:<name>[,k=v...]):\n";
    for (const auto &s : scenario::all()) {
        std::cout << "  " << s.name;
        if (!s.params.empty()) {
            std::cout << "{";
            bool pfirst = true;
            for (const auto &p : s.params) {
                if (!pfirst)
                    std::cout << ",";
                pfirst = false;
                std::cout << p.name << "=" << p.defaultValue;
            }
            std::cout << "}";
        }
        std::cout << "\n      " << s.summary << " [" << s.paperRef
                  << "]\n";
        for (const auto &p : s.params)
            std::cout << "      " << p.name << ": " << p.help
                      << " (default " << p.defaultValue << ")\n";
    }

    std::cout << "\nbuilt-in paper library:\n";
    for (const auto &t : litmus::paperlib::allTests())
        std::cout << "  " << t.id << " [" << t.section << "]\n";

    if (!corpus_files.empty()) {
        std::cout << "\non-disk corpus (" << corpus_dir << "):\n";
        for (const auto &f : corpus_files)
            std::cout << "  " << f << "\n";
    }

    std::cout << "\nchips:";
    for (const auto &c : sim::allChips())
        std::cout << " " << c.shortName;
    std::cout << "\nmodels:";
    for (const auto &m : eval::builtinModelNames())
        std::cout << " " << m;
    std::cout << "\nbackends:";
    for (const auto &b : eval::builtinBackendNames())
        std::cout << " " << b;
    std::cout << "\n";
    return 0;
}

int
cmdChips()
{
    for (const auto &c : sim::allChips()) {
        std::cout << c.shortName << "\t" << c.vendor << " "
                  << c.chipName << " (" << c.arch << ", " << c.year
                  << "), SDK " << c.sdk << ", driver " << c.driver
                  << "\n";
    }
    return 0;
}

int
cmdModels()
{
    for (const auto &[name, m] : cat::models::all()) {
        std::cout << name << ": checks";
        for (const auto &c : m->checkNames())
            std::cout << " " << c;
        std::cout << "\n";
    }
    std::cout << "sorensen-operational: checks";
    for (const auto &c : model::operationalBaseline().checkNames())
        std::cout << " " << c;
    std::cout << "\n";
    return 0;
}

// ---- serve / submit / status ----------------------------------------

/**
 * The persistent validation daemon (docs/SERVE.md): listen on a Unix
 * socket and/or loopback TCP, plan requests through the same planner
 * the batch commands mirror, answer repeats from the durable result
 * store. SIGINT/SIGTERM drain in-flight requests, flush the store and
 * exit 0 — the clean shutdown CI asserts.
 */
int
cmdServe(const Args &args)
{
    serve::ServerOptions opts;
    opts.socketPath = args.get("socket", "");
    opts.tcpPort = static_cast<int>(args.getInt("port", 0));
    opts.storeDir = args.get("store", "");
    opts.threads = static_cast<int>(args.getInt("jobs", 0));
    opts.maxStoreBytes =
        static_cast<uint64_t>(args.getInt("max-store-bytes", 0));
    if (opts.socketPath.empty() && opts.tcpPort == 0) {
        std::cerr << "usage: gpulitmus serve --socket PATH |"
                     " --port N [--store DIR] [--jobs N]"
                     " [--max-store-bytes N]\n";
        return 1;
    }

    std::string error;
    auto server = serve::Server::create(opts, &error);
    if (!server) {
        std::cerr << "error: " << error << "\n";
        return 1;
    }

    struct sigaction sa{};
    sa.sa_handler = serve::Server::notifySignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    // A client vanishing mid-stream must error the send, not kill
    // the daemon.
    ::signal(SIGPIPE, SIG_IGN);

    std::cout << "gpulitmus serve [" << kAbiVersionString << "]:";
    if (!opts.socketPath.empty())
        std::cout << " socket " << opts.socketPath;
    if (opts.tcpPort != 0)
        std::cout << " tcp 127.0.0.1:" << opts.tcpPort;
    if (server->store())
        std::cout << ", store " << server->store()->dir() << " ("
                  << server->store()->size() << " records)";
    else
        std::cout << ", no store (results are not durable)";
    std::cout << "\n" << std::flush;

    server->run();
    std::cout << "gpulitmus serve: drained, store flushed, exiting\n";
    return 0;
}

/** Shared by submit/status: connect to --socket or --host/--port. */
std::unique_ptr<serve::Client>
connectFlag(const Args &args)
{
    std::string error;
    std::unique_ptr<serve::Client> client;
    if (args.has("socket"))
        client =
            serve::Client::connectUnix(args.get("socket", ""), &error);
    else if (args.has("port"))
        client = serve::Client::connectTcp(
            args.get("host", "127.0.0.1"),
            static_cast<int>(args.getInt("port", 0)), &error);
    else
        error = "need --socket PATH or --port N";
    if (!client)
        std::cerr << "error: " << error << "\n";
    return client;
}

/**
 * Submit one request to a running daemon and stream its events. Test
 * positionals accept everything the batch commands do — library ids,
 * scenario specs, .litmus paths (sent inline as source, so the daemon
 * never needs this machine's filesystem). The exit status is the
 * daemon's verdict: the same 0/1/2 the equivalent batch command
 * returns.
 */
int
cmdSubmit(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus submit"
                     " <sweep|validate|explore|scenario|list|stats|"
                     "shutdown> [tests...] --socket PATH|--port N"
                     " [--chips A,B] [--models A,B] [--columns 1-16]"
                     " [--column 1..16] [--iterations N] [--seed S]"
                     " [--budget N] [--exact] [--json]\n";
        return 1;
    }

    serve::Request req;
    req.cmd = args.positional[0];
    req.id = args.get("id", "cli");
    for (size_t i = 1; i < args.positional.size(); ++i) {
        const std::string &arg = args.positional[i];
        serve::TestSpec spec;
        if (scenario::isSpec(arg)) {
            spec.spec = arg;
        } else if (std::filesystem::exists(arg)) {
            // Ship the file's text, not its path: the daemon may not
            // share this filesystem.
            std::ifstream in(arg);
            std::stringstream buffer;
            buffer << in.rdbuf();
            spec.source = buffer.str();
        } else {
            spec.name = arg; // a paper-library id
        }
        req.tests.push_back(std::move(spec));
    }
    if (args.has("chips")) {
        for (const auto &c : split(args.get("chips", ""), ','))
            req.chips.push_back(trim(c));
    }
    if (args.has("models")) {
        for (const auto &m : split(args.get("models", ""), ','))
            req.models.push_back(trim(m));
    }
    if (args.has("columns")) {
        req.columns = parseColumns(args.get("columns", ""));
        if (req.columns.empty()) {
            std::cerr << "error: invalid --columns '"
                      << args.get("columns", "")
                      << "' (want e.g. 1-16, 9 or 1,5,9)\n";
            return 1;
        }
    }
    req.column = static_cast<int>(args.getInt("column", 16));
    req.iterations =
        static_cast<uint64_t>(args.getInt("iterations", 0));
    req.seed = static_cast<uint64_t>(args.getInt("seed", 0x6c69));
    req.budget =
        static_cast<uint64_t>(args.getInt("budget", 1 << 20));
    req.exact = args.has("exact");

    auto client = connectFlag(args);
    if (!client)
        return 1;

    bool raw = args.has("json");
    auto onEvent = [raw](const json::Value &event,
                         const std::string &line) {
        std::string kind = event.getString("event");
        if (raw) {
            // Machine consumers (the CI smoke job) get the wire
            // lines verbatim — including result cells with their
            // "from_store" markers.
            std::cout << line << "\n";
            return;
        }
        if (kind == "hello") {
            std::cerr << "daemon abi " << event.getString("abi")
                      << ", " << event.getInt("threads", 0)
                      << " threads, "
                      << event.getInt("store_records", 0)
                      << " stored records\n";
        } else if (kind == "accepted") {
            std::cerr << "accepted: " << event.getInt("jobs", 0)
                      << " jobs\n";
        } else if (kind == "progress") {
            std::cerr << "  computed " << event.getInt("done", 0)
                      << "/" << event.getInt("total", 0) << " jobs\r";
        } else if (kind == "summary") {
            std::cerr << "\n";
            std::cout << "results: " << event.getInt("results", 0)
                      << " (" << event.getInt("store_results", 0)
                      << " from store), cells "
                      << event.getInt("cells", 0) << ", sound "
                      << event.getInt("sound", 0) << ", unsound "
                      << event.getInt("unsound", 0)
                      << ", forbidden-reachable "
                      << event.getInt("forbidden_reachable", 0)
                      << ", exit " << event.getInt("exit", 0)
                      << "\n";
        } else if (kind != "result" && kind != "done") {
            std::cout << line << "\n";
        }
    };

    std::string error;
    int exit_code = client->submit(req, onEvent, &error);
    if (exit_code < 0) {
        std::cerr << "error: " << error << "\n";
        return 1;
    }
    if (exit_code == 1 && !error.empty())
        std::cerr << "error: " << error << "\n";
    return exit_code;
}

/** One poll of the daemon: its `stats` and `metrics` events. */
bool
pollDaemon(serve::Client &client, const std::string &id,
           json::Value *stats, std::string *stats_line,
           json::Value *metrics, std::string *metrics_line,
           std::string *error)
{
    serve::Request req;
    req.id = id;
    req.cmd = "stats";
    int rc = client.submit(
        req,
        [&](const json::Value &event, const std::string &line) {
            if (event.getString("event") == "stats") {
                *stats = event;
                *stats_line = line;
            }
        },
        error);
    if (rc != 0)
        return false;
    req.cmd = "metrics";
    rc = client.submit(
        req,
        [&](const json::Value &event, const std::string &line) {
            if (event.getString("event") == "metrics") {
                *metrics = event;
                *metrics_line = line;
            }
        },
        error);
    return rc == 0;
}

/** The --watch table: daemon/store counters and the engine/explorer
 * telemetry that shows a long request is alive. */
void
printStatusTable(const json::Value &stats,
                 const json::Value &metrics)
{
    auto metric = [&metrics](const char *name) -> int64_t {
        const json::Value *m = metrics.find("metrics");
        return m ? m->getInt(name, 0) : 0;
    };
    auto timerField = [&metrics](const char *name,
                                 const char *field) -> int64_t {
        const json::Value *m = metrics.find("metrics");
        const json::Value *t = m ? m->find(name) : nullptr;
        return t ? t->getInt(field, 0) : 0;
    };

    std::cout << "daemon:   " << stats.getInt("connections", 0)
              << " connections ("
              << metric("serve_clients_connected") << " live), "
              << stats.getInt("requests", 0) << " requests, "
              << stats.getInt("jobs", 0) << " jobs planned, "
              << stats.getInt("replayed_requests", 0)
              << " journal replays\n";
    std::cout << "store:    " << stats.getInt("store_records", 0)
              << " records, " << stats.getInt("store_hits", 0)
              << " hits, " << stats.getInt("store_misses", 0)
              << " misses, " << metric("store_appends_total")
              << " appends\n";
    std::cout << "engine:   " << metric("engine_jobs_total")
              << " jobs (" << metric("engine_jobs_cached_total")
              << " cache, " << metric("engine_jobs_from_store_total")
              << " store), L1 hits "
              << stats.getInt("engine_cache_hits", 0)
              << ", mean latency "
              << (timerField("engine_job_latency_us", "count")
                      ? timerField("engine_job_latency_us",
                                   "mean_us")
                      : 0)
              << " us\n";
    std::cout << "explorer: " << metric("mc_explorations_total")
              << " explorations (" << metric("mc_bounded_total")
              << " bounded), " << metric("mc_replays_total")
              << " replays, " << metric("mc_states_cached_total")
              << " states, " << metric("mc_sleep_skips_total")
              << " sleep skips, peak depth "
              << metric("mc_last_peak_depth") << "\n";
    std::cout.flush();
}

/** Daemon/store counters plus the telemetry registry (`stats` +
 * `metrics` requests). --watch N polls and redraws; --json prints
 * the raw event lines for scripting. */
int
cmdStatus(const Args &args)
{
    auto client = connectFlag(args);
    if (!client)
        return 1;
    bool raw = args.has("json");
    int watch = args.has("watch")
                    ? static_cast<int>(args.getInt("watch", 2))
                    : 0;
    if (watch < 0)
        watch = 0;

    for (;;) {
        json::Value stats, metrics;
        std::string stats_line, metrics_line, error;
        if (!pollDaemon(*client, args.get("id", "cli"), &stats,
                        &stats_line, &metrics, &metrics_line,
                        &error)) {
            std::cerr << "error: "
                      << (error.empty() ? "status request failed"
                                        : error)
                      << "\n";
            return 1;
        }
        if (raw) {
            std::cout << stats_line << "\n"
                      << metrics_line << "\n";
        } else {
            if (watch > 0 && isatty(1))
                std::cout << "\033[2J\033[H"; // clear + home
            printStatusTable(stats, metrics);
        }
        if (watch <= 0)
            break;
        std::this_thread::sleep_for(std::chrono::seconds(watch));
    }
    return 0;
}

int
dispatch(const std::string &cmd, const Args &args)
{
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "check")
        return cmdCheck(args);
    if (cmd == "validate")
        return cmdValidate(args);
    if (cmd == "explore")
        return cmdExplore(args);
    if (cmd == "list")
        return cmdList(args);
    if (cmd == "show")
        return cmdShow(args);
    if (cmd == "lint")
        return cmdLint(args);
    if (cmd == "sass")
        return cmdSass(args);
    if (cmd == "generate")
        return cmdGenerate(args);
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "chips")
        return cmdChips();
    if (cmd == "models")
        return cmdModels();
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "submit")
        return cmdSubmit(args);
    if (cmd == "status")
        return cmdStatus(args);
    std::cerr << "unknown command '" << cmd << "'\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr
            << "usage: gpulitmus"
               " <run|sweep|check|validate|explore|list|show|lint|"
               "sass|generate|gen|chips|models|serve|submit|status>"
               " ...\n";
        return 1;
    }
    std::string cmd = argv[1];
    Args args = parseArgs(argc, argv, 2);

    // --trace FILE: collect spans for the whole invocation and write
    // Chrome trace-event JSON on the way out (docs/OBSERVABILITY.md).
    std::string trace_path;
    if (args.has("trace")) {
        trace_path = args.get("trace", "trace.json");
        if (trace_path == "true") // bare --trace with no value
            trace_path = "trace.json";
        obs::Trace::start();
    }

    int exit_code = dispatch(cmd, args);

    if (!trace_path.empty()) {
        std::string error;
        if (obs::Trace::writeFile(trace_path, &error))
            std::cerr << "trace: wrote " << trace_path << " ("
                      << "open in https://ui.perfetto.dev)\n";
        else
            std::cerr << "trace: " << error << "\n";
    }
    return exit_code;
}
