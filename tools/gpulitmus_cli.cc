/**
 * @file
 * The gpulitmus command-line tool — the workflow of the paper's
 * litmus/herd/diy tools behind one binary:
 *
 *   gpulitmus run <file.litmus> [--chip NAME] [--iterations N]
 *            [--column 1..16]            run a test on a simulated chip
 *   gpulitmus check <file.litmus> [--model NAME]
 *                                        herd-style model evaluation
 *   gpulitmus show <file.litmus>         parse and pretty-print
 *   gpulitmus sass <file.litmus> [-O N] [--sdk V] [--maxwell]
 *                                        assemble + optcheck
 *   gpulitmus generate [--max-edges N] [--max-tests N]
 *                                        diy-style test generation
 *   gpulitmus chips                      list the chip registry
 *   gpulitmus models                     list the built-in models
 *
 * Exit status: 0 on success, 1 on usage/parse errors, 2 when a check
 * fails (optcheck violation or ~exists condition observed).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cat/models.h"
#include "common/strutil.h"
#include "gen/generator.h"
#include "harness/runner.h"
#include "litmus/parser.h"
#include "model/baseline.h"
#include "model/checker.h"
#include "opt/amd.h"
#include "opt/optcheck.h"
#include "opt/ptxas.h"

using namespace gpulitmus;

namespace {

struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    bool
    has(const std::string &name) const
    {
        return flags.count(name) > 0;
    }

    std::string
    get(const std::string &name, const std::string &fallback) const
    {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : it->second;
    }

    int64_t
    getInt(const std::string &name, int64_t fallback) const
    {
        auto it = flags.find(name);
        if (it == flags.end())
            return fallback;
        auto v = parseInt(it->second);
        return v ? *v : fallback;
    }
};

Args
parseArgs(int argc, char **argv, int start)
{
    Args args;
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        if (startsWith(a, "--")) {
            std::string name = a.substr(2);
            std::string value = "true";
            auto eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
            } else if (i + 1 < argc && argv[i + 1][0] != '-') {
                value = argv[++i];
            }
            args.flags[name] = value;
        } else if (startsWith(a, "-O")) {
            args.flags["opt-level"] = a.substr(2);
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

std::optional<litmus::Test>
loadTest(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "error: cannot open '" << path << "'\n";
        return std::nullopt;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    litmus::ParseError err;
    auto test = litmus::parseTest(buffer.str(), &err);
    if (!test) {
        std::cerr << "error: " << path << ": " << err.message << "\n";
        return std::nullopt;
    }
    return test;
}

const cat::Model &
modelByName(const std::string &name)
{
    if (name == "rmo")
        return cat::models::rmo();
    if (name == "sc")
        return cat::models::sc();
    if (name == "tso")
        return cat::models::tso();
    if (name == "sc-per-loc-full")
        return cat::models::scPerLocFull();
    if (name == "operational" || name == "sorensen")
        return model::operationalBaseline();
    if (name != "ptx")
        std::cerr << "warning: unknown model '" << name
                  << "', using ptx\n";
    return cat::models::ptx();
}

int
cmdRun(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus run <file.litmus> [--chip"
                     " NAME] [--iterations N] [--column 1..16]\n";
        return 1;
    }
    auto test = loadTest(args.positional[0]);
    if (!test)
        return 1;

    harness::RunConfig cfg;
    cfg.iterations = static_cast<uint64_t>(args.getInt(
        "iterations",
        static_cast<int64_t>(harness::defaultIterations())));
    cfg.seed = static_cast<uint64_t>(args.getInt("seed", 0x6c69));
    int column = static_cast<int>(args.getInt("column", 16));
    cfg.inc = sim::Incantations::fromColumn(column);
    const sim::ChipProfile &chip =
        sim::chip(args.get("chip", "Titan"));

    litmus::Test to_run = *test;
    if (chip.isAmd()) {
        auto compiled = opt::amdCompile(to_run, chip);
        for (const auto &q : compiled.quirks)
            std::cout << "compile note: " << q << "\n";
        if (compiled.miscompiled) {
            std::cout << "test miscompiled for " << chip.shortName
                      << ": result is n/a\n";
            return 2;
        }
        to_run = compiled.compiled;
    }

    std::cout << "chip: " << chip.vendor << " " << chip.chipName
              << "; incantations: " << cfg.inc.str() << "; "
              << cfg.iterations << " iterations\n\n";
    litmus::Histogram hist = harness::run(chip, to_run, cfg);
    std::cout << hist.str();
    if (to_run.quantifier == litmus::Quantifier::NotExists &&
        hist.observed() > 0)
        return 2;
    return 0;
}

int
cmdCheck(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus check <file.litmus>"
                     " [--model ptx|rmo|sc|tso|operational]\n";
        return 1;
    }
    auto test = loadTest(args.positional[0]);
    if (!test)
        return 1;
    const cat::Model &m = modelByName(args.get("model", "ptx"));
    model::Checker checker(m);
    model::Verdict v = checker.check(*test);
    std::cout << "model " << m.name() << ": " << v.numCandidates
              << " candidates, " << v.numAllowed << " allowed\n";
    std::cout << "condition "
              << litmus::toString(test->quantifier) << " ("
              << test->condition.str() << "): " << v.verdict << "\n";
    std::cout << "allowed outcomes:\n";
    for (const auto &key : v.allowedKeys)
        std::cout << "  " << key << "\n";
    if (!v.forbiddenKeys.empty()) {
        std::cout << "forbidden outcomes:\n";
        for (const auto &key : v.forbiddenKeys)
            std::cout << "  " << key << "\n";
    }
    if (v.conditionSatisfiable && v.witness) {
        std::cout << "witness execution:\n" << v.witness->str();
    } else if (v.forbiddenWitness) {
        std::cout << "closest forbidden execution (killed by "
                  << v.forbiddingCheck << "):\n"
                  << v.forbiddenWitness->str();
    }
    return 0;
}

int
cmdShow(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus show <file.litmus>\n";
        return 1;
    }
    auto test = loadTest(args.positional[0]);
    if (!test)
        return 1;
    std::cout << test->str();
    return 0;
}

int
cmdSass(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: gpulitmus sass <file.litmus> [-O N]"
                     " [--sdk V] [--maxwell]\n";
        return 1;
    }
    auto test = loadTest(args.positional[0]);
    if (!test)
        return 1;
    opt::PtxasOptions opts;
    opts.optLevel = static_cast<int>(args.getInt("opt-level", 3));
    opts.sdkVersion = args.get("sdk", "6.0");
    opts.targetMaxwell = args.has("maxwell");
    opt::SassProgram sass = opt::assemble(*test, opts);
    std::cout << sass.disassemble();
    auto check = opt::optcheck(sass);
    std::cout << check.str();
    return check.ok ? 0 : 2;
}

int
cmdGenerate(const Args &args)
{
    gen::GeneratorOptions opts;
    opts.maxEdges = static_cast<int>(args.getInt("max-edges", 4));
    opts.maxTests =
        static_cast<size_t>(args.getInt("max-tests", 20));
    auto tests = gen::generate(gen::defaultPool(), opts);
    for (const auto &g : tests) {
        std::cout << "(* cycle: " << g.cycleName << " *)\n"
                  << g.test.str() << "\n";
    }
    std::cerr << tests.size() << " tests generated\n";
    return 0;
}

int
cmdChips()
{
    for (const auto &c : sim::allChips()) {
        std::cout << c.shortName << "\t" << c.vendor << " "
                  << c.chipName << " (" << c.arch << ", " << c.year
                  << "), SDK " << c.sdk << ", driver " << c.driver
                  << "\n";
    }
    return 0;
}

int
cmdModels()
{
    for (const auto &[name, m] : cat::models::all()) {
        std::cout << name << ": checks";
        for (const auto &c : m->checkNames())
            std::cout << " " << c;
        std::cout << "\n";
    }
    std::cout << "sorensen-operational: checks";
    for (const auto &c : model::operationalBaseline().checkNames())
        std::cout << " " << c;
    std::cout << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr
            << "usage: gpulitmus"
               " <run|check|show|sass|generate|chips|models> ...\n";
        return 1;
    }
    std::string cmd = argv[1];
    Args args = parseArgs(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "check")
        return cmdCheck(args);
    if (cmd == "show")
        return cmdShow(args);
    if (cmd == "sass")
        return cmdSass(args);
    if (cmd == "generate")
        return cmdGenerate(args);
    if (cmd == "chips")
        return cmdChips();
    if (cmd == "models")
        return cmdModels();
    std::cerr << "unknown command '" << cmd << "'\n";
    return 1;
}
