#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Scans the given markdown files (or every ``*.md`` under given
directories) for inline links and validates that every *local* target
exists relative to the file containing the link. External schemes
(http/https/mailto) are not fetched — CI must not depend on network
weather. Fragment-only links (``#section``) are accepted.

Usage: check_md_links.py FILE_OR_DIR [FILE_OR_DIR ...]
Exits 1 listing every broken link, 0 when all resolve.
"""

import re
import sys
from pathlib import Path

# Inline markdown links: [text](target). Images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")


def collect(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        else:
            yield path


def check(md: Path):
    broken = []
    text = md.read_text(encoding="utf-8")
    # Fenced code blocks routinely contain example syntax that is not
    # a real link; strip them before scanning.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        local = target.split("#", 1)[0]
        if not local:
            continue
        if not (md.parent / local).exists():
            broken.append((md, target))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = []
    seen = 0
    for md in collect(argv[1:]):
        if not md.exists():
            print(f"error: no such file: {md}", file=sys.stderr)
            return 2
        seen += 1
        broken.extend(check(md))
    for md, target in broken:
        print(f"BROKEN LINK: {md}: ({target})", file=sys.stderr)
    print(f"checked {seen} markdown file(s), "
          f"{len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
