#!/usr/bin/env python3
"""Telemetry-output validator for the observability CI job.

Two sub-checks, selected by the first argument:

``trace FILE``
    FILE must be a Chrome trace-event JSON document as written by
    ``gpulitmus <cmd> --trace FILE`` (obs/trace.h): a top-level object
    with a ``traceEvents`` array of complete ("X") events, each
    carrying name/cat/pid/tid/ts/dur with sane types and
    non-negative timestamps. This is the same shape
    https://ui.perfetto.dev and chrome://tracing load directly; a file
    that passes here opens there. Requires at least one event —
    a traced explore run always emits the explore span.

``prometheus FILE``
    FILE must be Prometheus text exposition (version 0.0.4) as
    returned in the ``prometheus`` field of the serve ``metrics``
    event: ``# TYPE`` headers naming only counter/gauge types,
    sample lines of ``name value`` with gpulitmus_-prefixed metric
    names, and a trailing newline. Requires at least one
    ``gpulitmus_``-prefixed sample.

Exits 0 when the file validates, 1 with a diagnostic per violation.
"""

import json
import re
import sys
from pathlib import Path

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                    r"(?:\{[^}]*\})? (?P<value>-?[0-9.eE+]+|NaN)$")


def fail(errors):
    for e in errors:
        print(f"check_obs: {e}", file=sys.stderr)
    return 1


def check_trace(path):
    errors = []
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return fail([f"{path}: not readable JSON: {exc}"])

    if not isinstance(doc, dict):
        return fail([f"{path}: top level must be an object"])
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail([f"{path}: missing traceEvents array"])
    if not events:
        errors.append(f"{path}: traceEvents is empty — the traced "
                      "command recorded no spans")

    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "cat", "ph"):
            if not isinstance(ev.get(key), str) or not ev.get(key):
                errors.append(f"{where}: missing string '{key}'")
        if ev.get("ph") != "X":
            errors.append(f"{where}: ph must be 'X' (complete "
                          f"event), got {ev.get('ph')!r}")
        for key in ("pid", "tid", "ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, int) or v < 0:
                errors.append(
                    f"{where}: '{key}' must be a non-negative "
                    f"integer, got {v!r}")

    if errors:
        return fail(errors)
    print(f"check_obs: {path}: {len(events)} trace events OK")
    return 0


def check_prometheus(path):
    errors = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return fail([f"{path}: {exc}"])

    if text and not text.endswith("\n"):
        errors.append(f"{path}: exposition must end with a newline")

    typed = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter",
                                                   "gauge"):
                errors.append(f"{path}:{lineno}: malformed TYPE "
                              f"line: {line!r}")
                continue
            if not METRIC_NAME.match(parts[2]):
                errors.append(f"{path}:{lineno}: bad metric name "
                              f"{parts[2]!r}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        m = SAMPLE.match(line)
        if not m:
            errors.append(f"{path}:{lineno}: unparseable sample "
                          f"line: {line!r}")
            continue
        samples += 1
        name = m.group("name")
        # Timer series sample under their base TYPE'd name with a
        # _count/_sum_us/_min_us/_max_us suffix; plain counters and
        # gauges must match a TYPE header exactly.
        base_ok = any(name == t or name.startswith(t + "_")
                      for t in typed)
        if not base_ok:
            errors.append(f"{path}:{lineno}: sample {name!r} has "
                          "no preceding # TYPE header")

    prefixed = [t for t in typed if t.startswith("gpulitmus_")]
    if not prefixed:
        errors.append(f"{path}: no gpulitmus_-prefixed metrics — "
                      "is telemetry disabled?")
    if samples == 0:
        errors.append(f"{path}: no sample lines")

    if errors:
        return fail(errors)
    print(f"check_obs: {path}: {len(typed)} metrics, "
          f"{samples} samples OK")
    return 0


def main(argv):
    if len(argv) != 3 or argv[1] not in ("trace", "prometheus"):
        print("usage: check_obs.py trace|prometheus FILE",
              file=sys.stderr)
        return 2
    if argv[1] == "trace":
        return check_trace(argv[2])
    return check_prometheus(argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
