/**
 * @file
 * Tests for the unified eval backend API: backend resolution, the
 * tagged EvalResult of each engine, key/cache semantics of
 * backend-named jobs, the conformance join over the on-disk corpus,
 * and bit-identity of sim-backend campaigns with the PR-1 engine.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cat/models.h"
#include "eval/backend.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "litmus/parser.h"
#include "model/checker.h"

#ifndef GPULITMUS_SOURCE_DIR
#define GPULITMUS_SOURCE_DIR "."
#endif

namespace gpulitmus::eval {
namespace {

namespace pl = litmus::paperlib;

const char *kCorpus[] = {
    "corr.litmus",         "mp.litmus",
    "mp-membar.gl.litmus", "sb.litmus",
    "lb.litmus",           "lb-membar.ctas.litmus",
    "mp-volatile.litmus",  "cas-sl.litmus",
    "mp-deps.litmus",      "corr-l2-l1.litmus",
};

litmus::Test
corpusTest(const std::string &name)
{
    std::string path =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    litmus::ParseError err;
    auto test = litmus::parseTest(ss.str(), &err);
    EXPECT_TRUE(test.has_value()) << name << ": " << err.message;
    return *test;
}

TEST(BackendRegistry, ResolvesEveryBuiltin)
{
    for (const auto &name : builtinBackendNames()) {
        std::string error;
        auto backend = backendByName(name, &error);
        ASSERT_NE(backend, nullptr) << name << ": " << error;
        if (name == "baseline")
            EXPECT_EQ(backend->name(), "baseline");
        else
            EXPECT_EQ(backend->name(), name);
    }
    // Aliases of the Sec. 6 baseline.
    for (const char *alias : {"operational", "sorensen"}) {
        auto backend = backendByName(alias);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->name(), "baseline");
    }
}

TEST(BackendRegistry, UnknownNameIsAnErrorListingValidNames)
{
    std::string error;
    EXPECT_EQ(backendByName("bogus", &error), nullptr);
    EXPECT_NE(error.find("unknown backend 'bogus'"),
              std::string::npos);
    for (const auto &name : builtinBackendNames())
        EXPECT_NE(error.find(name), std::string::npos) << name;
}

TEST(BackendRegistry, LoadsModelFromCatFile)
{
    std::string path = "/tmp/gpulitmus_test_model.cat";
    {
        std::ofstream out(path);
        out << cat::models::scSource();
    }
    std::string error;
    auto backend = backendByName(path, &error);
    ASSERT_NE(backend, nullptr) << error;
    auto axiom =
        std::dynamic_pointer_cast<const AxiomBackend>(backend);
    ASSERT_NE(axiom, nullptr);

    // The file model behaves exactly like the built-in it copies.
    EvalJob job;
    job.backend = path;
    job.test = pl::mp();
    auto verdict = backend->evaluate(job).verdict;
    ASSERT_TRUE(verdict.has_value());
    model::Verdict builtin =
        model::Checker(cat::models::sc()).check(pl::mp());
    EXPECT_EQ(verdict->allowedKeys, builtin.allowedKeys);
    std::remove(path.c_str());
}

TEST(BackendRegistry, BadCatFileReportsParseError)
{
    std::string path = "/tmp/gpulitmus_bad_model.cat";
    {
        std::ofstream out(path);
        out << "let sc = (((\n";
    }
    std::string error;
    EXPECT_EQ(backendByName(path, &error), nullptr);
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(SimBackend, MatchesHarnessRunBitForBit)
{
    harness::RunConfig cfg;
    cfg.iterations = 1500;
    litmus::Histogram direct = harness::run(sim::chip("Titan"),
                                            pl::mp(), cfg);

    SimBackend backend;
    EvalResult result = backend.evaluate(
        harness::Job::fromConfig(sim::chip("Titan"), pl::mp(), cfg));
    ASSERT_TRUE(result.hasHist());
    EXPECT_FALSE(result.hasVerdict());
    EXPECT_EQ(result.backend, harness::kSimBackend);
    EXPECT_EQ(result.hist->counts(), direct.counts());
    EXPECT_EQ(result.hist->observed(), direct.observed());
}

TEST(AxiomBackend, MatchesCheckerVerdict)
{
    AxiomBackend backend(cat::models::ptx());
    EvalJob job;
    job.backend = "ptx";
    job.test = pl::lbMembarCtas();
    EvalResult result = backend.evaluate(job);
    ASSERT_TRUE(result.hasVerdict());
    EXPECT_FALSE(result.hasHist());

    model::Verdict direct =
        model::Checker(cat::models::ptx()).check(pl::lbMembarCtas());
    EXPECT_EQ(result.verdict->numCandidates, direct.numCandidates);
    EXPECT_EQ(result.verdict->numAllowed, direct.numAllowed);
    EXPECT_EQ(result.verdict->allowedKeys, direct.allowedKeys);
    EXPECT_EQ(result.verdict->verdict, direct.verdict);
}

TEST(EvalJob, SimKeysUnchangedByBackendRedesign)
{
    // A default job IS a sim job: the backend field must not perturb
    // the PR-1 key/seed derivation.
    harness::RunConfig cfg;
    harness::Job job =
        harness::Job::fromConfig(sim::chip("Titan"), pl::mp(), cfg);
    EXPECT_TRUE(job.isSim());
    harness::Job named = job;
    named.backend = harness::kSimBackend;
    EXPECT_EQ(job.key(), named.key());
    EXPECT_EQ(job.derivedSeed(), named.derivedSeed());
    EXPECT_EQ(job.cacheKey(), named.cacheKey());
}

TEST(EvalJob, ModelKeysIgnoreSimAxesButNotBackendOrTest)
{
    harness::RunConfig cfg;
    harness::Job job =
        harness::Job::fromConfig(sim::chip("Titan"), pl::mp(), cfg);
    job.backend = "ptx";

    harness::Job other_cell = job;
    other_cell.chip = sim::chip("TesC");
    other_cell.inc = sim::Incantations::fromColumn(3);
    other_cell.iterations *= 2;
    other_cell.seed += 99;
    EXPECT_EQ(job.cacheKey(), other_cell.cacheKey());

    harness::Job other_backend = job;
    other_backend.backend = "rmo";
    EXPECT_NE(job.cacheKey(), other_backend.cacheKey());

    harness::Job other_test = job;
    other_test.test = pl::sb();
    EXPECT_NE(job.cacheKey(), other_test.cacheKey());

    // And the backend id separates model keys from sim keys.
    harness::Job sim_job = job;
    sim_job.backend = harness::kSimBackend;
    EXPECT_NE(job.cacheKey(), sim_job.cacheKey());
}

TEST(EvalEngine, MixedBackendGridJoinsAndDedups)
{
    harness::Campaign campaign;
    campaign.iterations(800)
        .overChips(std::vector<std::string>{"Titan", "TesC"})
        .overBackends({harness::kSimBackend, "ptx"})
        .test(pl::mp(), "mp");

    auto jobs = campaign.jobs();
    ASSERT_EQ(jobs.size(), 4u); // 2 chips x {sim, ptx}
    EXPECT_EQ(jobs[0].backend, harness::kSimBackend);
    EXPECT_EQ(jobs[1].backend, "ptx");

    Engine engine;
    ConformanceSink conformance;
    auto results = engine.run(campaign, {&conformance});
    ASSERT_EQ(results.size(), 4u);

    // The two ptx cells collapse onto one evaluation.
    size_t computed_models = 0;
    for (const auto &r : results) {
        if (r.hasVerdict() && !r.fromCache)
            ++computed_models;
    }
    EXPECT_EQ(computed_models, 1u);

    // Join: one cell per (chip x model).
    auto cells = conformance.cells();
    ASSERT_EQ(cells.size(), 2u);
    for (const auto &cell : cells) {
        EXPECT_EQ(cell.model, "ptx");
        EXPECT_EQ(cell.runs, 800u);
        EXPECT_NE(cell.kind, Conformance::Unsound);
    }
}

TEST(EvalEngine, BaselineAliasesNormaliseAndShareOneEvaluation)
{
    // "operational"/"sorensen" are aliases of "baseline": jobs naming
    // either must dedup onto one evaluation under the resolved name.
    harness::Job a;
    a.backend = "baseline";
    a.test = pl::mp();
    harness::Job b = a;
    b.backend = "operational";

    Engine engine;
    auto results = engine.run({a, b});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].backend, "baseline");
    EXPECT_EQ(results[1].backend, "baseline");
    EXPECT_EQ(results[1].job->backend, "baseline"); // normalised
    EXPECT_FALSE(results[0].fromCache);
    EXPECT_TRUE(results[1].fromCache); // shared, not recomputed
}

TEST(EvalEngine, RejectsUnknownBackend)
{
    harness::Job job;
    job.backend = "no-such-backend";
    job.test = pl::mp();
    Engine engine;
    EXPECT_EXIT(engine.run({job}),
                ::testing::ExitedWithCode(1), "unknown backend");
}

TEST(Conformance, PtxSoundOnCorpusForEveryChipProfile)
{
    // The cross-backend keystone: over the on-disk corpus, the ptx
    // model must never be "unsound" (observed-but-forbidden) on ANY
    // chip profile. AMD chips run what their OpenCL compiler
    // produces; out-of-scope tests (.ca/volatile, Sec. 5.5) are
    // excluded exactly as in the paper.
    harness::RunConfig cfg;
    cfg.iterations = 600;

    harness::Campaign campaign;
    campaign.base(cfg);
    size_t in_scope = 0;
    for (const auto &name : kCorpus) {
        litmus::Test test = corpusTest(name);
        if (!model::inModelScope(test))
            continue;
        ++in_scope;
        for (const auto &chip : sim::resultChips()) {
            auto to_run = compileForChip(test, chip);
            if (!to_run)
                continue; // miscompiled: the paper's "n/a" cells
            harness::Job sim_job =
                harness::Job::fromConfig(chip, *to_run, cfg);
            sim_job.label = std::string(name);
            campaign.add(sim_job);
            harness::Job model_job = sim_job;
            model_job.backend = "ptx";
            campaign.add(std::move(model_job));
        }
    }
    ASSERT_GT(in_scope, 5u);

    Engine engine;
    ConformanceSink conformance;
    engine.run(campaign, {&conformance});

    auto cells = conformance.cells();
    ASSERT_GE(cells.size(), in_scope * 2); // AMD "n/a" cells drop out
    for (const auto &cell : cells) {
        EXPECT_NE(cell.kind, Conformance::Unsound)
            << cell.test << " on " << cell.chip
            << ": observed-but-forbidden '"
            << (cell.violations.empty() ? ""
                                        : cell.violations.front())
            << "'";
    }
    EXPECT_EQ(conformance.unsoundCells(), 0u);
}

TEST(Conformance, FlagsTheSec6BaselineAsUnsound)
{
    // The Sec. 6 counterexample through the new API: inter-CTA
    // lb+membar.ctas is observed on the Titan but forbidden by the
    // operational baseline model.
    harness::Campaign campaign;
    campaign.iterations(30000)
        .overChips(std::vector<std::string>{"Titan"})
        .overBackends({harness::kSimBackend, "baseline", "ptx"})
        .test(pl::lbMembarCtas(), "lb+membar.ctas");

    Engine engine;
    ConformanceSink conformance;
    engine.run(campaign, {&conformance});

    bool baseline_unsound = false;
    for (const auto &cell : conformance.cells()) {
        if (cell.model == "baseline")
            baseline_unsound |= cell.kind == Conformance::Unsound;
        if (cell.model == "ptx") {
            EXPECT_NE(cell.kind, Conformance::Unsound);
        }
    }
    EXPECT_TRUE(baseline_unsound);
    EXPECT_GE(conformance.unsoundCells(), 1u);
}

TEST(Conformance, SinkSummaryAndJsonShape)
{
    harness::Campaign campaign;
    campaign.iterations(500)
        .overChips(std::vector<std::string>{"Titan"})
        .overBackends({harness::kSimBackend, "ptx", "sc"})
        .test(pl::mp(), "mp");
    Engine engine;
    ConformanceSink conformance;
    engine.run(campaign, {&conformance});

    std::string summary = conformance.summary().str();
    EXPECT_NE(summary.find("model"), std::string::npos);
    EXPECT_NE(summary.find("ptx"), std::string::npos);
    EXPECT_NE(summary.find("sc"), std::string::npos);

    std::ostringstream os;
    conformance.writeTo(os);
    std::string doc = os.str();
    EXPECT_EQ(doc.front(), '[');
    for (const char *field :
         {"\"test\":\"mp\"", "\"chip\":\"Titan\"", "\"model\":\"ptx\"",
          "\"model\":\"sc\"", "\"kind\":\"", "\"violations\":"})
        EXPECT_NE(doc.find(field), std::string::npos) << field;
}

TEST(EvalEngine, JsonSinkTagsBothSides)
{
    harness::Campaign campaign;
    campaign.iterations(300)
        .overChips(std::vector<std::string>{"Titan"})
        .overBackends({harness::kSimBackend, "ptx"})
        .test(pl::sb(), "sb");
    Engine engine;
    JsonSink json;
    engine.run(campaign, {&json});
    ASSERT_EQ(json.size(), 2u);
    std::ostringstream os;
    json.writeTo(os);
    std::string doc = os.str();
    for (const char *field :
         {"\"backend\":\"sim\"", "\"backend\":\"ptx\"",
          "\"counts\":{", "\"candidates\":", "\"allowed_outcomes\":"})
        EXPECT_NE(doc.find(field), std::string::npos) << field;
}

TEST(EvalEngine, SimCampaignBitIdenticalToPr1ApiAt1And8Threads)
{
    // The acceptance bar of the redesign: a sim-only sweep through
    // the eval engine is bit-identical to the PR-1 harness::Engine,
    // at any thread count, over the whole on-disk corpus.
    std::vector<litmus::Test> tests;
    for (const auto &name : kCorpus)
        tests.push_back(corpusTest(name));

    auto build = [&]() {
        harness::Campaign campaign;
        campaign.iterations(400)
            .overChips(std::vector<std::string>{"Titan", "HD7970"})
            .overColumns(9, 12)
            .overTests(tests);
        return campaign;
    };

    for (int threads : {1, 8}) {
        harness::EngineOptions hopts;
        hopts.threads = threads;
        hopts.cache = false;
        harness::Engine pr1(hopts);
        auto expected = build().run(pr1);

        EngineOptions eopts;
        eopts.threads = threads;
        eopts.cache = false;
        Engine unified(eopts);
        auto actual = unified.run(build());

        ASSERT_EQ(expected.size(), actual.size());
        for (size_t i = 0; i < expected.size(); ++i) {
            ASSERT_TRUE(actual[i].hasHist());
            EXPECT_EQ(expected[i].hist.counts(),
                      actual[i].hist->counts())
                << "cell " << i << " at " << threads << " threads";
            EXPECT_EQ(expected[i].observedPer100k,
                      actual[i].observedPer100k);
        }
    }
}

} // namespace
} // namespace gpulitmus::eval
