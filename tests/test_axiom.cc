/**
 * @file
 * Unit tests for the axiomatic engine: relation algebra properties
 * (including parameterized algebraic-law sweeps) and candidate
 * execution enumeration on known litmus shapes.
 */

#include <gtest/gtest.h>

#include "axiom/enumerate.h"
#include "common/rng.h"
#include "litmus/library.h"

namespace gpulitmus::axiom {
namespace {

using litmus::paperlib::coRR;
using litmus::paperlib::lb;
using litmus::paperlib::mp;
using litmus::paperlib::sb;

TEST(Relation, BasicSetOps)
{
    Relation a(4), b(4);
    a.set(0, 1);
    a.set(1, 2);
    b.set(1, 2);
    b.set(2, 3);
    EXPECT_EQ((a | b).pairCount(), 3u);
    EXPECT_EQ((a & b).pairCount(), 1u);
    EXPECT_EQ(a.minus(b).pairCount(), 1u);
    EXPECT_TRUE(a.minus(a).empty());
}

TEST(Relation, Composition)
{
    Relation a(4), b(4);
    a.set(0, 1);
    b.set(1, 2);
    Relation c = a.seq(b);
    EXPECT_TRUE(c.get(0, 2));
    EXPECT_EQ(c.pairCount(), 1u);
}

TEST(Relation, Inverse)
{
    Relation a(3);
    a.set(0, 2);
    a.set(1, 0);
    Relation inv = a.inverse();
    EXPECT_TRUE(inv.get(2, 0));
    EXPECT_TRUE(inv.get(0, 1));
    EXPECT_EQ(inv.inverse(), a);
}

TEST(Relation, TransitiveClosure)
{
    Relation a(4);
    a.set(0, 1);
    a.set(1, 2);
    a.set(2, 3);
    Relation p = a.plus();
    EXPECT_TRUE(p.get(0, 3));
    EXPECT_TRUE(p.get(1, 3));
    EXPECT_FALSE(p.get(3, 0));
}

TEST(Relation, AcyclicityDetection)
{
    Relation a(3);
    a.set(0, 1);
    a.set(1, 2);
    EXPECT_TRUE(a.acyclic());
    a.set(2, 0);
    EXPECT_FALSE(a.acyclic());
    auto cycle = a.findCycle();
    EXPECT_EQ(cycle.size(), 3u);
}

TEST(Relation, SelfLoopIsCycle)
{
    Relation a(2);
    a.set(1, 1);
    EXPECT_FALSE(a.acyclic());
    EXPECT_FALSE(a.irreflexive());
}

TEST(Relation, RestrictFiltersDomainAndRange)
{
    Relation a(4);
    a.set(0, 1);
    a.set(2, 3);
    Relation r = a.restrict(0b0001, 0b0010); // domain {0}, range {1}
    EXPECT_TRUE(r.get(0, 1));
    EXPECT_EQ(r.pairCount(), 1u);
}

TEST(Relation, IdentityAndUniversal)
{
    EXPECT_EQ(Relation::identity(3).pairCount(), 3u);
    EXPECT_EQ(Relation::universal(3).pairCount(), 9u);
    EXPECT_TRUE(Relation::identity(64).get(63, 63));
    EXPECT_TRUE(Relation::universal(64).get(63, 0));
}

/** Algebraic laws checked on random relations (property tests). */
class RelationLaws : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Relation
    random(Rng &rng, int n)
    {
        Relation r(n);
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                if (rng.chance(0.3))
                    r.set(i, j);
            }
        }
        return r;
    }
};

TEST_P(RelationLaws, Hold)
{
    Rng rng(GetParam());
    const int n = 8;
    Relation a = random(rng, n);
    Relation b = random(rng, n);
    Relation c = random(rng, n);
    Relation id = Relation::identity(n);

    // Union/intersection laws.
    EXPECT_EQ(a | b, b | a);
    EXPECT_EQ(a & b, b & a);
    EXPECT_EQ((a | b) | c, a | (b | c));
    EXPECT_EQ(a & (b | c), (a & b) | (a & c));
    EXPECT_EQ(a | a, a);
    EXPECT_EQ(a.minus(b).minus(c), a.minus(b | c));

    // Composition laws.
    EXPECT_EQ(a.seq(b).seq(c), a.seq(b.seq(c)));
    EXPECT_EQ(a.seq(id), a);
    EXPECT_EQ(id.seq(a), a);
    EXPECT_EQ(a.seq(b | c), a.seq(b) | a.seq(c));

    // Inverse laws.
    EXPECT_EQ(a.seq(b).inverse(), b.inverse().seq(a.inverse()));
    EXPECT_EQ((a | b).inverse(), a.inverse() | b.inverse());

    // Closure laws.
    Relation p = a.plus();
    EXPECT_EQ(p.plus(), p);               // idempotent
    EXPECT_EQ(a.star(), a.plus() | id);
    EXPECT_EQ(a.maybe(), a | id);
    // plus contains all finite powers.
    EXPECT_EQ(p | a.seq(p), p);
    // Acyclicity is equivalent to irreflexivity of the closure.
    EXPECT_EQ(a.acyclic(), p.irreflexive());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationLaws,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

// ---------------------------------------------------------------------
// Enumeration tests
// ---------------------------------------------------------------------

TEST(Enumerate, MpHasAllFourOutcomes)
{
    auto execs = enumerateExecutions(mp());
    EXPECT_FALSE(execs.empty());
    std::set<std::pair<int64_t, int64_t>> outcomes;
    for (const auto &e : execs) {
        outcomes.insert({e.finalState.reg(1, "r1"),
                         e.finalState.reg(1, "r2")});
    }
    // All four candidate r1/r2 combinations must appear.
    EXPECT_EQ(outcomes.size(), 4u);
}

TEST(Enumerate, EventsIncludeInitWrites)
{
    auto execs = enumerateExecutions(mp());
    ASSERT_FALSE(execs.empty());
    int init_count = 0;
    for (const auto &e : execs[0].events)
        init_count += e.isInit();
    EXPECT_EQ(init_count, 2); // x and y
}

TEST(Enumerate, RfIsWellFormed)
{
    for (const auto &ex : enumerateExecutions(sb())) {
        for (const auto &e : ex.events) {
            if (!e.isRead())
                continue;
            int sources = 0;
            for (const auto &w : ex.events) {
                if (ex.rf.get(w.id, e.id)) {
                    ++sources;
                    EXPECT_TRUE(w.isWrite());
                    EXPECT_EQ(w.loc, e.loc);
                    EXPECT_EQ(w.value, e.value);
                }
            }
            EXPECT_EQ(sources, 1) << "read " << e.id;
        }
    }
}

TEST(Enumerate, CoTotalPerLocation)
{
    for (const auto &ex : enumerateExecutions(coRR())) {
        for (const auto &a : ex.events) {
            for (const auto &b : ex.events) {
                if (a.id >= b.id || !a.isWrite() || !b.isWrite() ||
                    a.loc != b.loc)
                    continue;
                EXPECT_TRUE(ex.co.get(a.id, b.id) ||
                            ex.co.get(b.id, a.id));
                EXPECT_FALSE(ex.co.get(a.id, b.id) &&
                             ex.co.get(b.id, a.id));
            }
        }
        EXPECT_TRUE(ex.co.acyclic());
    }
}

TEST(Enumerate, InitFirstInCo)
{
    for (const auto &ex : enumerateExecutions(mp())) {
        for (const auto &e : ex.events) {
            if (e.isInit()) {
                for (const auto &w : ex.events) {
                    if (w.isWrite() && !w.isInit() && w.loc == e.loc) {
                        EXPECT_TRUE(ex.co.get(e.id, w.id));
                    }
                }
            }
        }
    }
}

TEST(Enumerate, FrDerivation)
{
    // In an execution of mp where T1's second read sees 0, that read
    // is fr-before T0's store to x.
    for (const auto &ex : enumerateExecutions(mp())) {
        Relation fr = ex.fr();
        for (const auto &r : ex.events) {
            if (!r.isRead() || r.loc != "x" || r.value != 0)
                continue;
            for (const auto &w : ex.events) {
                if (w.isWrite() && !w.isInit() && w.loc == "x") {
                    EXPECT_TRUE(fr.get(r.id, w.id));
                }
            }
        }
    }
}

TEST(Enumerate, DependenciesFromGuards)
{
    // dlb-mp's guarded load must be ctrl-dependent on the first load.
    auto execs =
        enumerateExecutions(litmus::paperlib::dlbMp(false));
    ASSERT_FALSE(execs.empty());
    bool found_guarded_load = false;
    for (const auto &ex : execs) {
        for (const auto &e : ex.events) {
            if (e.tid == 1 && e.isRead() && e.loc == "d") {
                found_guarded_load = true;
                bool has_ctrl = false;
                for (const auto &src : ex.events) {
                    if (ex.ctrl.get(src.id, e.id))
                        has_ctrl = true;
                }
                EXPECT_TRUE(has_ctrl);
            }
        }
    }
    EXPECT_TRUE(found_guarded_load);
}

TEST(Enumerate, AtomicityFiltersInterveningWrites)
{
    // Two competing CAS(0->1) on one location: they cannot both
    // succeed reading 0, since an atomic's read and write must be
    // adjacent in coherence.
    litmus::Test t = litmus::TestBuilder("cas-race")
                         .global("m", 0)
                         .thread("atom.cas r0,[m],0,1")
                         .thread("atom.cas r0,[m],0,1")
                         .interCta()
                         .exists("0:r0=0 /\\ 1:r0=0")
                         .build();
    auto execs = enumerateExecutions(t);
    EXPECT_FALSE(execs.empty());
    for (const auto &ex : execs) {
        EXPECT_FALSE(ex.finalState.reg(0, "r0") == 0 &&
                     ex.finalState.reg(1, "r0") == 0)
            << "both CAS succeeded reading 0";
    }
}

TEST(Enumerate, CasFailurePerformsNoWrite)
{
    litmus::Test t = litmus::TestBuilder("cas-fail")
                         .global("m", 7)
                         .thread("atom.cas r0,[m],0,1")
                         .interCta()
                         .exists("0:r0=7")
                         .build();
    auto execs = enumerateExecutions(t);
    ASSERT_FALSE(execs.empty());
    for (const auto &ex : execs) {
        EXPECT_EQ(ex.finalState.reg(0, "r0"), 7);
        EXPECT_EQ(ex.finalState.loc("m"), 7);
        for (const auto &e : ex.events) {
            if (e.isWrite() && !e.isInit())
                FAIL() << "failed CAS produced a write";
        }
    }
}

TEST(Enumerate, FinalMemoryFollowsCoherence)
{
    litmus::Test t = litmus::TestBuilder("two-writers")
                         .global("x", 0)
                         .thread("st.cg [x],1")
                         .thread("st.cg [x],2")
                         .interCta()
                         .exists("x=1 \\/ x=2")
                         .build();
    std::set<int64_t> finals;
    for (const auto &ex : enumerateExecutions(t))
        finals.insert(ex.finalState.loc("x"));
    EXPECT_EQ(finals, (std::set<int64_t>{1, 2}));
}

TEST(Enumerate, ScopeRelationsFollowScopeTree)
{
    auto execs_inter = enumerateExecutions(mp());
    ASSERT_FALSE(execs_inter.empty());
    const auto &ex = execs_inter[0];
    // Find one event of each thread.
    int e0 = -1, e1 = -1;
    for (const auto &e : ex.events) {
        if (e.tid == 0)
            e0 = e.id;
        if (e.tid == 1)
            e1 = e.id;
    }
    ASSERT_GE(e0, 0);
    ASSERT_GE(e1, 0);
    EXPECT_FALSE(ex.scopeCta.get(e0, e1)); // inter-CTA
    EXPECT_TRUE(ex.scopeGl.get(e0, e1));
    EXPECT_TRUE(ex.scopeSys.get(e0, e1));

    auto execs_intra = enumerateExecutions(coRR());
    ASSERT_FALSE(execs_intra.empty());
    const auto &ex2 = execs_intra[0];
    for (const auto &a : ex2.events) {
        for (const auto &b : ex2.events) {
            if (a.tid == 0 && b.tid == 1) {
                EXPECT_TRUE(ex2.scopeCta.get(a.id, b.id));
            }
        }
    }
}

TEST(Enumerate, LoopWithBoundedUnrollTerminates)
{
    // A spin loop that can exit: CAS until success against an
    // initially-unlocked mutex. The step budget must not be hit for
    // the successful path.
    litmus::Test t = litmus::TestBuilder("spin")
                         .global("m", 0)
                         .thread("LOOP: atom.cas r0,[m],0,1;"
                                 "setp.ne p0,r0,0; @p0 bra LOOP;"
                                 "ld.cg r1,[m]")
                         .intraCta()
                         .exists("0:r1=1")
                         .build();
    auto execs = enumerateExecutions(t);
    EXPECT_FALSE(execs.empty());
}

TEST(Enumerate, FalseDependencyTracked)
{
    // Fig. 13b: and-with-high-bit keeps an address dependency.
    litmus::Test t =
        litmus::TestBuilder("dep")
            .global("x", 0)
            .global("y", 0)
            .regLoc(0, "r4", "y")
            .thread("ld.cg r1,[x]; and.b32 r2,r1,0x80000000;"
                    "cvt.u64.u32 r3,r2; add.u64 r4,r4,r3;"
                    "ld.cg r5,[r4]")
            .intraCta()
            .exists("0:r5=0")
            .build();
    auto execs = enumerateExecutions(t);
    ASSERT_FALSE(execs.empty());
    for (const auto &ex : execs) {
        int first_load = -1, second_load = -1;
        for (const auto &e : ex.events) {
            if (e.isRead() && e.loc == "x")
                first_load = e.id;
            if (e.isRead() && e.loc == "y")
                second_load = e.id;
        }
        ASSERT_GE(first_load, 0);
        ASSERT_GE(second_load, 0);
        EXPECT_TRUE(ex.addr.get(first_load, second_load));
    }
}

} // namespace
} // namespace gpulitmus::axiom
