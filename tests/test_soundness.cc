/**
 * @file
 * The repository's keystone property test — a scaled-down Sec. 5.4:
 * for a family of generated tests plus the in-scope paper tests,
 * every behaviour the simulated hardware exhibits must be allowed by
 * the PTX model, on every Nvidia chip. (The .ca and volatile tests
 * are outside the model's scope, Sec. 5.5, exactly as in the paper.)
 */

#include <gtest/gtest.h>

#include "cat/models.h"
#include "gen/generator.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "model/checker.h"

namespace gpulitmus {
namespace {

using model::inModelScope;

struct SoundnessCase
{
    std::string id;
    litmus::Test test;
};

std::vector<SoundnessCase>
soundnessCases()
{
    std::vector<SoundnessCase> cases;
    gen::GeneratorOptions opts;
    opts.maxEdges = 4;
    opts.maxTests = 60;
    for (auto &g : gen::generate(gen::defaultPool(), opts))
        cases.push_back({g.cycleName, std::move(g.test)});
    for (auto &nt : litmus::paperlib::allTests()) {
        if (inModelScope(nt.test))
            cases.push_back({nt.id + " " + nt.test.name,
                             std::move(nt.test)});
    }
    return cases;
}

class Soundness : public ::testing::TestWithParam<SoundnessCase>
{
};

TEST_P(Soundness, SimulatedBehavioursAllowedByPtxModel)
{
    const litmus::Test &test = GetParam().test;
    model::Checker checker(cat::models::ptx());
    model::Verdict verdict = checker.check(test);

    harness::RunConfig cfg;
    cfg.iterations = 800;
    for (const auto &chip : sim::resultChips()) {
        if (!chip.isNvidia())
            continue;
        litmus::Histogram hist = harness::run(chip, test, cfg);
        auto report = model::checkSoundness(verdict, hist);
        EXPECT_TRUE(report.sound)
            << test.name << " on " << chip.shortName
            << ": observed-but-forbidden outcome '"
            << (report.violations.empty() ? ""
                                          : report.violations.front())
            << "'";
    }
}

INSTANTIATE_TEST_SUITE_P(
    GeneratedAndPaper, Soundness,
    ::testing::ValuesIn(soundnessCases()),
    [](const ::testing::TestParamInfo<SoundnessCase> &info) {
        std::string name = info.param.id;
        std::string out;
        for (char c : name) {
            out += std::isalnum(static_cast<unsigned char>(c))
                       ? c
                       : '_';
        }
        return out + "_" + std::to_string(info.index);
    });

TEST(Completeness, ModelAllowedOutcomesAreSimReachableForIdioms)
{
    // The dual direction, on the classic idioms: outcomes the model
    // allows should actually show up on the weakest chip. (Not a
    // general theorem — hardware may be stronger — but true for
    // these shapes on TesC/Titan.)
    harness::RunConfig cfg;
    cfg.iterations = 60000;
    for (auto test : {litmus::paperlib::mp(), litmus::paperlib::sb(),
                      litmus::paperlib::coRR()}) {
        model::Checker checker(cat::models::ptx());
        model::Verdict verdict = checker.check(test);
        litmus::Histogram hist =
            harness::run(sim::chip(test.name == "coRR" ? "GTX5"
                                                       : "Titan"),
                         test, cfg);
        for (const auto &key : verdict.allowedKeys) {
            EXPECT_TRUE(hist.counts().count(key))
                << test.name << ": allowed outcome '" << key
                << "' never observed";
        }
    }
}

} // namespace
} // namespace gpulitmus
