/**
 * @file
 * Unit tests for the litmus layer: conditions, scope trees, the test
 * builder, the Fig. 12 format parser, histograms, and the built-in
 * paper test library.
 */

#include <gtest/gtest.h>

#include "litmus/library.h"
#include "litmus/outcome.h"
#include "litmus/parser.h"
#include "scenario/registry.h"

namespace gpulitmus::litmus {
namespace {

TEST(Condition, ParseAtomAndEval)
{
    auto c = parseCondition("0:r1=1");
    ASSERT_TRUE(c.has_value());
    FinalState st;
    st.regs[{0, "r1"}] = 1;
    EXPECT_TRUE(c->eval(st));
    st.regs[{0, "r1"}] = 0;
    EXPECT_FALSE(c->eval(st));
}

TEST(Condition, ParseConjunction)
{
    auto c = parseCondition("0:r1=1 /\\ 1:r2=0");
    ASSERT_TRUE(c.has_value());
    FinalState st;
    st.regs[{0, "r1"}] = 1;
    st.regs[{1, "r2"}] = 0;
    EXPECT_TRUE(c->eval(st));
    st.regs[{1, "r2"}] = 1;
    EXPECT_FALSE(c->eval(st));
}

TEST(Condition, ParseDisjunctionAndParens)
{
    auto c = parseCondition("(0:r1=1 \\/ x=2) /\\ ~(1:r0=5)");
    ASSERT_TRUE(c.has_value());
    FinalState st;
    st.mem["x"] = 2;
    st.regs[{1, "r0"}] = 4;
    EXPECT_TRUE(c->eval(st));
    st.regs[{1, "r0"}] = 5;
    EXPECT_FALSE(c->eval(st));
}

TEST(Condition, LocationAtoms)
{
    auto c = parseCondition("x=3");
    ASSERT_TRUE(c.has_value());
    FinalState st;
    st.mem["x"] = 3;
    EXPECT_TRUE(c->eval(st));
}

TEST(Condition, MissingRegsDefaultToZero)
{
    auto c = parseCondition("0:r9=0");
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(c->eval(FinalState{}));
}

TEST(Condition, CollectRegsAndLocs)
{
    auto c = parseCondition("0:r1=1 /\\ 1:r2=0 /\\ x=2 /\\ 0:r1=3");
    ASSERT_TRUE(c.has_value());
    std::vector<RegKey> regs;
    c->collectRegs(regs);
    EXPECT_EQ(regs.size(), 2u); // deduplicated
    std::vector<std::string> locs;
    c->collectLocs(locs);
    ASSERT_EQ(locs.size(), 1u);
    EXPECT_EQ(locs[0], "x");
}

TEST(Condition, QuantifierParsing)
{
    auto q1 = parseQuantifiedCondition("exists (0:r1=1)");
    ASSERT_TRUE(q1.has_value());
    EXPECT_EQ(q1->first, Quantifier::Exists);

    auto q2 = parseQuantifiedCondition("~exists (0:r1=1)");
    ASSERT_TRUE(q2.has_value());
    EXPECT_EQ(q2->first, Quantifier::NotExists);

    auto q3 = parseQuantifiedCondition("forall (0:r1=1)");
    ASSERT_TRUE(q3.has_value());
    EXPECT_EQ(q3->first, Quantifier::Forall);

    auto q4 = parseQuantifiedCondition("final: 0:r1=1");
    ASSERT_TRUE(q4.has_value());
    EXPECT_EQ(q4->first, Quantifier::Exists);

    EXPECT_FALSE(parseQuantifiedCondition("sometimes (0:r1=1)"));
}

TEST(Condition, RejectsMalformed)
{
    EXPECT_FALSE(parseCondition("0:r1="));
    EXPECT_FALSE(parseCondition("=1"));
    EXPECT_FALSE(parseCondition("0:r1=1 /\\"));
    EXPECT_FALSE(parseCondition("(0:r1=1"));
}

TEST(ScopeTree, Factories)
{
    ScopeTree w = ScopeTree::intraWarp(2);
    EXPECT_TRUE(w.sameWarp(0, 1));

    ScopeTree c = ScopeTree::intraCta(2);
    EXPECT_TRUE(c.sameCta(0, 1));
    EXPECT_FALSE(c.sameWarp(0, 1));

    ScopeTree g = ScopeTree::interCta(3);
    EXPECT_FALSE(g.sameCta(0, 1));
    EXPECT_FALSE(g.sameCta(1, 2));
    EXPECT_EQ(g.numCtas(), 3);
}

TEST(ScopeTree, ParsePaperFormat)
{
    auto t = ScopeTree::parse("ScopeTree(grid(cta(warp T0) (warp T1)))");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->numThreads(), 2);
    EXPECT_TRUE(t->sameCta(0, 1));
    EXPECT_FALSE(t->sameWarp(0, 1));
}

TEST(ScopeTree, ParseInterCta)
{
    auto t = ScopeTree::parse("grid(cta(warp T0)) (cta(warp T1))");
    ASSERT_TRUE(t.has_value());
    EXPECT_FALSE(t->sameCta(0, 1));
}

TEST(ScopeTree, ParseSameWarp)
{
    auto t = ScopeTree::parse("grid(cta(warp T0 T1))");
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->sameWarp(0, 1));
}

TEST(ScopeTree, RoundTrip)
{
    ScopeTree orig = ScopeTree::intraCta(2);
    auto parsed = ScopeTree::parse(orig.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, orig);
}

TEST(ScopeTree, RejectsBadInput)
{
    EXPECT_FALSE(ScopeTree::parse("cta(warp T0)"));
    EXPECT_FALSE(ScopeTree::parse("grid(warp T0)")); // warp outside cta
    EXPECT_FALSE(ScopeTree::parse("grid(cta(warp T0) (warp T2))"));
    EXPECT_FALSE(ScopeTree::parse(""));
}

TEST(ScopeTree, SingleThreadDegenerateTree)
{
    // The one-thread tree: every relation is reflexive-only and there
    // is exactly one CTA — the shape the analyzer sees for
    // single-thread programs (no cross-thread pair can exist).
    for (ScopeTree t : {ScopeTree::intraWarp(1), ScopeTree::intraCta(1),
                        ScopeTree::interCta(1)}) {
        EXPECT_EQ(t.numThreads(), 1);
        EXPECT_EQ(t.numCtas(), 1);
        EXPECT_TRUE(t.sameCta(0, 0));
        EXPECT_TRUE(t.sameWarp(0, 0));
        auto parsed = ScopeTree::parse(t.str());
        ASSERT_TRUE(parsed.has_value()) << t.str();
        EXPECT_EQ(*parsed, t);
    }
}

TEST(ScopeTree, AllThreadsInOneWarp)
{
    // Four threads packed into one warp of one CTA: sameWarp (and so
    // sameCta) holds for every pair, and a membar.cta always has a
    // same-CTA peer to act on.
    ScopeTree t = ScopeTree::intraWarp(4);
    EXPECT_EQ(t.numThreads(), 4);
    EXPECT_EQ(t.numCtas(), 1);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            EXPECT_TRUE(t.sameWarp(i, j)) << i << "," << j;
            EXPECT_TRUE(t.sameCta(i, j)) << i << "," << j;
            EXPECT_EQ(t.placement(i).warp, t.placement(j).warp);
        }
    }
    auto parsed = ScopeTree::parse(t.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
}

TEST(ScopeTree, ScenarioBuildersPlaceThreadsInterCta)
{
    // The registry scenarios model inter-GPU-block interaction: every
    // scenario variant must place at least two testing threads in
    // different CTAs, and numCtas() must agree with the maximum CTA
    // index in the placements (the machine sizes its per-CTA shared
    // memories and L1s from it).
    for (const auto &s : scenario::all()) {
        std::string error;
        auto built =
            scenario::buildSpec("scenario:" + s.name, &error);
        ASSERT_TRUE(built.has_value()) << s.name << ": " << error;
        const ScopeTree &tree = built->test.scopeTree;
        ASSERT_GE(tree.numThreads(), 2) << s.name;
        bool crossCta = false;
        int maxCta = 0;
        for (int i = 0; i < tree.numThreads(); ++i) {
            maxCta = std::max(maxCta, tree.placement(i).cta);
            for (int j = i + 1; j < tree.numThreads(); ++j) {
                if (!tree.sameCta(i, j))
                    crossCta = true;
                // sameWarp refines sameCta in a well-formed tree.
                if (tree.sameWarp(i, j)) {
                    EXPECT_TRUE(tree.sameCta(i, j))
                        << s.name << " T" << i << "/T" << j;
                }
            }
        }
        EXPECT_TRUE(crossCta) << s.name;
        EXPECT_EQ(tree.numCtas(), maxCta + 1) << s.name;
        // The tree round-trips through the paper's concrete syntax.
        auto parsed = ScopeTree::parse(tree.str());
        ASSERT_TRUE(parsed.has_value()) << s.name;
        EXPECT_EQ(*parsed, tree) << s.name;
    }
}

TEST(TestBuilder, BuildsMp)
{
    litmus::Test t = TestBuilder("mp")
                 .global("x", 0)
                 .global("y", 0)
                 .thread("st.cg [x],1; st.cg [y],1")
                 .thread("ld.cg r1,[y]; ld.cg r2,[x]")
                 .interCta()
                 .exists("1:r1=1 /\\ 1:r2=0")
                 .build();
    EXPECT_EQ(t.program.numThreads(), 2);
    EXPECT_EQ(t.locations.size(), 2u);
    EXPECT_FALSE(t.scopeTree.sameCta(0, 1));
}

TEST(TestBuilder, AddressesAreStableAndDisjoint)
{
    litmus::Test t = TestBuilder("addr")
                 .global("x")
                 .global("y")
                 .shared("s")
                 .thread("st.cg [x],1")
                 .exists("x=1")
                 .build();
    EXPECT_NE(t.addressOf("x"), t.addressOf("y"));
    EXPECT_NE(t.addressOf("x"), t.addressOf("s"));
    EXPECT_EQ(t.locationAt(t.addressOf("y")).value(), "y");
    EXPECT_EQ(t.spaceOf(t.addressOf("s")).value(), MemSpace::Shared);
    EXPECT_FALSE(t.locationAt(12345).has_value());
}

TEST(LitmusParser, ParsesFig12)
{
    const char *src = R"(
GPU_PTX SB
{0:.reg .s32 r0; 0:.reg .s32 r2;
 0:.reg .b64 r1 = x; 0:.reg .b64 r3 = y;
 1:.reg .s32 r0; 1:.reg .s32 r2;
 1:.reg .b64 r1 = y; 1:.reg .b64 r3 = x;}
 T0                 | T1                 ;
 mov.s32 r0,1       | mov.s32 r0,1       ;
 st.cg.s32 [r1],r0  | st.cg.s32 [r1],r0  ;
 ld.cg.s32 r2,[r3]  | ld.cg.s32 r2,[r3]  ;
ScopeTree(grid(cta(warp T0) (warp T1)))
x: shared, y: global
exists (0:r2=0 /\ 1:r2=0)
)";
    ParseError err;
    auto t = parseTest(src, &err);
    ASSERT_TRUE(t.has_value()) << err.message;
    EXPECT_EQ(t->name, "SB");
    EXPECT_EQ(t->program.numThreads(), 2);
    EXPECT_EQ(t->regInits.size(), 4u); // the four location bindings
    ASSERT_TRUE(t->findLocation("x"));
    EXPECT_EQ(t->findLocation("x")->space, MemSpace::Shared);
    EXPECT_EQ(t->findLocation("y")->space, MemSpace::Global);
    EXPECT_TRUE(t->scopeTree.sameCta(0, 1));
    EXPECT_EQ(t->quantifier, Quantifier::Exists);
}

TEST(LitmusParser, ParsesSymbolicAddressesWithoutInitBlock)
{
    const char *src = R"(
GPU_PTX mp-lite
T0              | T1              ;
st.cg [x],1     | ld.cg r1,[y]    ;
st.cg [y],1     | ld.cg r2,[x]    ;
exists (1:r1=1 /\ 1:r2=0)
)";
    ParseError err;
    auto t = parseTest(src, &err);
    ASSERT_TRUE(t.has_value()) << err.message;
    EXPECT_EQ(t->locations.size(), 2u);
    // Default placement is inter-CTA.
    EXPECT_FALSE(t->scopeTree.sameCta(0, 1));
}

TEST(LitmusParser, LocationInitsInBraces)
{
    const char *src = R"(
GPU_PTX init-test
{x=5; global y=2; shared z=1;}
T0 ;
ld.cg r0,[x] ;
exists (0:r0=5)
)";
    ParseError err;
    auto t = parseTest(src, &err);
    ASSERT_TRUE(t.has_value()) << err.message;
    EXPECT_EQ(t->findLocation("x")->init, 5);
    EXPECT_EQ(t->findLocation("y")->init, 2);
    EXPECT_EQ(t->findLocation("z")->space, MemSpace::Shared);
}

TEST(LitmusParser, MissingConditionIsError)
{
    ParseError err;
    EXPECT_FALSE(parseTest("GPU_PTX bad\nT0 ;\nst.cg [x],1 ;\n", &err));
}

TEST(LitmusParser, RoundTripThroughPrinter)
{
    litmus::Test orig = paperlib::mp();
    ParseError err;
    auto reparsed = parseTest(orig.str(), &err);
    ASSERT_TRUE(reparsed.has_value()) << err.message;
    EXPECT_EQ(reparsed->program.numThreads(),
              orig.program.numThreads());
    EXPECT_EQ(reparsed->locations.size(), orig.locations.size());
    EXPECT_EQ(reparsed->scopeTree, orig.scopeTree);
}

TEST(Histogram, CountsAndVerdict)
{
    litmus::Test t = paperlib::mp();
    Histogram h(t);
    FinalState weak;
    weak.regs[{1, "r1"}] = 1;
    weak.regs[{1, "r2"}] = 0;
    FinalState ok;
    ok.regs[{1, "r1"}] = 1;
    ok.regs[{1, "r2"}] = 1;
    h.record(ok);
    h.record(ok);
    h.record(weak);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.observed(), 1u);
    EXPECT_EQ(h.verdict(), "Ok"); // exists, observed
    EXPECT_EQ(h.counts().size(), 2u);
}

TEST(Histogram, KeyIncludesOnlyObservedRegs)
{
    litmus::Test t = paperlib::mp();
    Histogram h(t);
    FinalState st;
    st.regs[{1, "r1"}] = 1;
    st.regs[{1, "r2"}] = 0;
    st.regs[{0, "r9"}] = 77; // not in the condition
    std::string key = h.keyFor(st);
    EXPECT_EQ(key.find("r9"), std::string::npos);
    EXPECT_NE(key.find("1:r1=1"), std::string::npos);
}

TEST(PaperLibrary, AllTestsValidate)
{
    auto tests = paperlib::allTests();
    EXPECT_GE(tests.size(), 20u);
    for (const auto &nt : tests) {
        EXPECT_FALSE(nt.id.empty());
        EXPECT_GE(nt.test.program.numThreads(), 1);
        // validate() already ran in build(); re-run for safety.
        nt.test.validate();
    }
}

TEST(PaperLibrary, CoRRShape)
{
    litmus::Test t = paperlib::coRR();
    EXPECT_EQ(t.program.numThreads(), 2);
    EXPECT_TRUE(t.scopeTree.sameCta(0, 1));
    EXPECT_FALSE(t.scopeTree.sameWarp(0, 1));
    EXPECT_EQ(t.locations.size(), 1u);
}

TEST(PaperLibrary, MpL1UsesCaLoadsAndCgStores)
{
    litmus::Test t = paperlib::mpL1(ptx::Scope::Gl);
    for (const auto &i : t.program.threads[0].instrs) {
        if (i.op == ptx::Opcode::St) {
            EXPECT_EQ(i.cacheOp, ptx::CacheOp::Cg);
        }
    }
    int fences = 0;
    for (const auto &i : t.program.threads[1].instrs) {
        if (i.op == ptx::Opcode::Ld) {
            EXPECT_EQ(i.cacheOp, ptx::CacheOp::Ca);
        }
        fences += i.isFence();
    }
    EXPECT_EQ(fences, 1);
}

TEST(PaperLibrary, MpVolatileIsSharedIntraCta)
{
    litmus::Test t = paperlib::mpVolatile();
    EXPECT_TRUE(t.scopeTree.sameCta(0, 1));
    for (const auto &l : t.locations)
        EXPECT_EQ(l.space, MemSpace::Shared);
}

TEST(PaperLibrary, CasSlMutexInitiallyLocked)
{
    litmus::Test t = paperlib::casSl(false);
    ASSERT_TRUE(t.findLocation("m"));
    EXPECT_EQ(t.findLocation("m")->init, 1);
}

TEST(PaperLibrary, FenceVariantsDifferInName)
{
    EXPECT_NE(paperlib::mpL1(std::nullopt).name,
              paperlib::mpL1(ptx::Scope::Gl).name);
}

} // namespace
} // namespace gpulitmus::litmus
