/**
 * @file
 * Tests for the telemetry layer (obs/): registry aggregation across
 * threads, timer monotonicity, Chrome-trace JSON well-formedness,
 * Prometheus exposition shape, metrics parity between the serve path
 * and the batch engine, and — the load-bearing invariant — bit
 * identity of results with telemetry on vs off.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.h"
#include "eval/backend.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "mc/explorer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace gpulitmus {
namespace {

namespace pl = litmus::paperlib;
namespace fs = std::filesystem;

/** Every test starts from a clean, enabled registry and restores the
 * default state on exit so suites compose in one binary. */
struct ObsTest : ::testing::Test
{
    void
    SetUp() override
    {
        obs::setEnabled(true);
        obs::Registry::instance().reset();
        obs::Trace::stop();
    }

    void
    TearDown() override
    {
        obs::Trace::stop();
        obs::Registry::instance().reset();
        obs::setEnabled(true);
    }
};

// ---- registry -------------------------------------------------------

TEST_F(ObsTest, CounterAggregatesAcrossThreads)
{
    obs::Counter &c = obs::counter("test_threads_total");
    constexpr int kThreads = 8;
    constexpr uint64_t kPer = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&c]() {
            for (uint64_t i = 0; i < kPer; ++i)
                c.add();
        });
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPer);

    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(41);
    c.add();
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(ObsTest, RegistryHandlesAreStableAcrossLookups)
{
    obs::Counter &a = obs::counter("test_stable");
    a.add(7);
    obs::Counter &b = obs::counter("test_stable");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 7u);
    // reset() zeroes but never invalidates.
    obs::Registry::instance().reset();
    a.add(1);
    EXPECT_EQ(b.value(), 1u);
}

TEST_F(ObsTest, GaugeTracksLivePopulation)
{
    obs::Gauge &g = obs::gauge("test_live");
    g.add(3);
    g.add(-1);
    EXPECT_EQ(g.value(), 2);
    g.set(10);
    EXPECT_EQ(g.value(), 10);
}

TEST_F(ObsTest, TimerStatisticsAreMonotoneAndExact)
{
    obs::Timer &t = obs::timer("test_latency_us");
    EXPECT_EQ(t.count(), 0u);
    EXPECT_EQ(t.minMicros(), 0u); // empty timer reports 0, not 2^64

    std::vector<std::thread> pool;
    for (int w = 0; w < 4; ++w)
        pool.emplace_back([&t, w]() {
            for (uint64_t i = 1; i <= 100; ++i)
                t.record(i + static_cast<uint64_t>(w) * 100);
        });
    for (auto &th : pool)
        th.join();

    EXPECT_EQ(t.count(), 400u);
    // sum(1..400) exactly: the striped sums lose nothing.
    EXPECT_EQ(t.sumMicros(), 400u * 401u / 2);
    EXPECT_EQ(t.minMicros(), 1u);
    EXPECT_EQ(t.maxMicros(), 400u);
    EXPECT_LE(t.minMicros(), t.maxMicros());
    // Buckets cover every record once.
    uint64_t bucketed = 0;
    for (size_t b = 0; b < obs::Timer::kBuckets; ++b)
        bucketed += t.bucket(b);
    EXPECT_EQ(bucketed, 400u);
}

TEST_F(ObsTest, TimerScopeRecordsNonDecreasingDurations)
{
    obs::Timer &t = obs::timer("test_scope_us");
    {
        obs::TimerScope scope(t);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(t.count(), 1u);
    EXPECT_GE(t.maxMicros(), 1000u); // slept >= 2ms, clocks are coarse
    EXPECT_GE(t.sumMicros(), t.minMicros());
}

TEST_F(ObsTest, DisabledTelemetryRecordsNothing)
{
    obs::setEnabled(false);
    obs::Counter &c = obs::counter("test_disabled");
    obs::Gauge &g = obs::gauge("test_disabled_gauge");
    obs::Timer &t = obs::timer("test_disabled_us");
    c.add(5);
    g.set(5);
    {
        obs::TimerScope scope(t);
    }
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(t.count(), 0u);
    obs::setEnabled(true);
    c.add(1);
    EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsTest, RegistryJsonAndPrometheusRenderEveryKind)
{
    obs::counter("test_json_total").add(3);
    obs::gauge("test_json_gauge").set(-2);
    obs::timer("test_json_us").record(10);
    obs::timer("test_json_us").record(30);

    auto doc = json::parse(obs::Registry::instance().json());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->getInt("test_json_total", -1), 3);
    EXPECT_EQ(doc->getInt("test_json_gauge", 0), -2);
    const json::Value *timer = doc->find("test_json_us");
    ASSERT_NE(timer, nullptr);
    EXPECT_EQ(timer->getInt("count", -1), 2);
    EXPECT_EQ(timer->getInt("sum_us", -1), 40);
    EXPECT_EQ(timer->getInt("min_us", -1), 10);
    EXPECT_EQ(timer->getInt("max_us", -1), 30);
    EXPECT_EQ(timer->getInt("mean_us", -1), 20);

    std::string prom = obs::Registry::instance().prometheus();
    EXPECT_NE(prom.find("# TYPE gpulitmus_test_json_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("gpulitmus_test_json_total 3"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE gpulitmus_test_json_gauge gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("gpulitmus_test_json_us_count 2"),
              std::string::npos);
    EXPECT_NE(prom.find("gpulitmus_test_json_us_sum_us 40"),
              std::string::npos);
    // Text exposition ends in a newline (scrapers require it).
    ASSERT_FALSE(prom.empty());
    EXPECT_EQ(prom.back(), '\n');
}

// ---- tracing --------------------------------------------------------

TEST_F(ObsTest, TraceJsonParsesBackAndCarriesTheSpans)
{
    obs::Trace::start();
    EXPECT_TRUE(obs::Trace::active());
    {
        obs::Span outer("outer", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        {
            obs::Span inner("inner", "test");
        }
    }
    std::string text = obs::Trace::json();
    obs::Trace::stop();
    EXPECT_FALSE(obs::Trace::active());

    auto doc = json::parse(text);
    ASSERT_TRUE(doc.has_value()) << text;
    EXPECT_EQ(doc->getString("displayTimeUnit"), "ms");
    const json::Value *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    const auto &list = events->array();
    ASSERT_EQ(list.size(), 2u); // inner closes first, then outer
    bool saw_outer = false, saw_inner = false;
    for (const auto &e : list) {
        EXPECT_EQ(e.getString("ph"), "X");
        EXPECT_EQ(e.getString("cat"), "test");
        EXPECT_GE(e.getInt("tid", -1), 1);
        EXPECT_GE(e.getInt("ts", -1), 0);
        EXPECT_GE(e.getInt("dur", -1), 0);
        saw_outer |= e.getString("name") == "outer";
        saw_inner |= e.getString("name") == "inner";
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_inner);
}

TEST_F(ObsTest, InactiveTraceCollectsNothing)
{
    {
        obs::Span span("ignored", "test");
    }
    auto doc = json::parse(obs::Trace::json());
    ASSERT_TRUE(doc.has_value());
    const json::Value *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->array().empty());

    // GPULITMUS_OBS=0 forces tracing off even after start().
    obs::setEnabled(false);
    obs::Trace::start();
    EXPECT_FALSE(obs::Trace::active());
    obs::Trace::stop();
}

TEST_F(ObsTest, TraceWriteFileRoundTrips)
{
    obs::Trace::start();
    {
        obs::Span span("file span", "test");
    }
    fs::path path = fs::temp_directory_path() /
                    ("gls_trace_" + std::to_string(::getpid()) +
                     ".json");
    std::string error;
    ASSERT_TRUE(obs::Trace::writeFile(path.string(), &error))
        << error;
    obs::Trace::stop();

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    auto doc = json::parse(ss.str());
    ASSERT_TRUE(doc.has_value());
    ASSERT_NE(doc->find("traceEvents"), nullptr);
    EXPECT_EQ(doc->find("traceEvents")->array().size(), 1u);
    fs::remove(path);
}

// ---- engine / explorer wiring ---------------------------------------

harness::Job
simJob(const litmus::Test &test, uint64_t iterations = 2000)
{
    harness::RunConfig cfg;
    cfg.iterations = iterations;
    cfg.seed = 12345;
    cfg.inc = sim::Incantations::fromColumn(16);
    return harness::Job::fromConfig(sim::chip("Titan"), test, cfg);
}

TEST_F(ObsTest, EngineTicksJobAndCacheCounters)
{
    std::vector<harness::Job> jobs = {simJob(pl::mp()),
                                      simJob(pl::sb()),
                                      simJob(pl::mp())}; // cache hit
    harness::Engine engine;
    auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), 3u);

    auto &reg = obs::Registry::instance();
    EXPECT_EQ(reg.counter("engine_jobs_total").value(), 3u);
    EXPECT_EQ(reg.counter("engine_batches_total").value(), 1u);
    EXPECT_EQ(reg.counter("engine_jobs_cached_total").value(), 1u);
    EXPECT_EQ(reg.counter("sim_jobs_total").value(), 2u);
    EXPECT_EQ(reg.counter("sim_iterations_total").value(), 4000u);
    EXPECT_EQ(reg.timer("engine_job_latency_us").count(), 2u);
    EXPECT_EQ(reg.timer("engine_queue_wait_us").count(), 2u);
    EXPECT_GT(reg.counter("engine_worker_wall_us_total").value(), 0u);
}

TEST_F(ObsTest, ExplorerTicksReplaysAndHeartbeat)
{
    mc::ExploreOptions opts;
    opts.machine.inc = sim::Incantations::fromColumn(16);
    opts.heartbeatEvery = 8;
    uint64_t beats = 0, last_replays = 0;
    opts.heartbeat = [&](const mc::ExploreStats &stats) {
        ++beats;
        EXPECT_GT(stats.replays, last_replays); // monotone
        last_replays = stats.replays;
    };
    litmus::Test mp = pl::mp();
    mc::Explorer explorer(sim::chip("Titan"), mp, opts);
    mc::ExploreResult r = explorer.explore();
    EXPECT_TRUE(r.complete);

    auto &reg = obs::Registry::instance();
    EXPECT_EQ(reg.counter("mc_replays_total").value(),
              r.stats.replays);
    EXPECT_EQ(reg.counter("mc_explorations_total").value(), 1u);
    EXPECT_EQ(reg.counter("mc_bounded_total").value(), 0u);
    EXPECT_EQ(reg.counter("mc_states_cached_total").value(),
              r.stats.distinctStates);
    // heartbeatEvery=8: one beat per 8 replays, modulo the tail.
    EXPECT_EQ(beats, r.stats.replays / 8);
}

TEST_F(ObsTest, BoundedExplorationReportsItsBudget)
{
    mc::ExploreOptions opts;
    opts.machine.inc = sim::Incantations::fromColumn(16);
    opts.maxReplays = 40;
    litmus::Test mp = pl::mp();
    mc::Explorer explorer(sim::chip("Titan"), mp, opts);
    mc::ExploreResult r = explorer.explore();
    ASSERT_FALSE(r.complete);

    EXPECT_EQ(r.budgetReplays, 40u);
    std::string report = r.report();
    EXPECT_NE(report.find("budget: replays"), std::string::npos);
    EXPECT_NE(report.find("deepest frontier"), std::string::npos);
    EXPECT_NE(report.find("bounded by"), std::string::npos);
    EXPECT_EQ(obs::Registry::instance()
                  .counter("mc_bounded_total")
                  .value(),
              1u);
}

// ---- bit identity ---------------------------------------------------

TEST_F(ObsTest, SweepBitIdenticalWithTelemetryOnAndOff)
{
    auto sweep = []() {
        harness::Engine engine;
        return engine.run({simJob(pl::mp(), 4000),
                           simJob(pl::sb(), 4000),
                           simJob(pl::lb(), 4000)});
    };

    obs::setEnabled(true);
    obs::Trace::start(); // tracing on is the worst case
    auto on = sweep();
    obs::Trace::stop();

    obs::setEnabled(false);
    auto off = sweep();
    obs::setEnabled(true);

    ASSERT_EQ(on.size(), off.size());
    for (size_t i = 0; i < on.size(); ++i) {
        EXPECT_EQ(on[i].hist.counts(), off[i].hist.counts());
        EXPECT_EQ(on[i].observedPer100k, off[i].observedPer100k);
    }
}

TEST_F(ObsTest, ExplorationBitIdenticalWithTelemetryOnAndOff)
{
    auto run = []() {
        mc::ExploreOptions opts;
        opts.machine.inc = sim::Incantations::fromColumn(16);
        opts.heartbeatEvery = 16;
        opts.heartbeat = [](const mc::ExploreStats &) {};
        litmus::Test mp = pl::mp();
        mc::Explorer explorer(sim::chip("Titan"), mp, opts);
        return explorer.explore();
    };
    obs::setEnabled(true);
    mc::ExploreResult on = run();
    obs::setEnabled(false);
    mc::ExploreResult off = run();
    obs::setEnabled(true);

    EXPECT_EQ(on.finals, off.finals);
    EXPECT_EQ(on.satisfying, off.satisfying);
    EXPECT_EQ(on.paths, off.paths);
    EXPECT_EQ(on.stats.replays, off.stats.replays);
    EXPECT_EQ(on.stats.distinctStates, off.stats.distinctStates);
}

// ---- serve parity ---------------------------------------------------

/** Short-lived daemon for the parity and metrics-command tests. The
 * store directory is caller-owned so a second daemon can reopen it
 * (the warm-restart store-hit path). */
struct ObsServer
{
    std::string socket;
    std::unique_ptr<serve::Server> server;
    std::thread runner;

    ObsServer(const std::string &store_dir, const std::string &tag)
    {
        socket = "/tmp/gls_obs_" + tag + "_" +
                 std::to_string(::getpid()) + ".sock";
        serve::ServerOptions opts;
        opts.socketPath = socket;
        opts.storeDir = store_dir;
        opts.threads = 2;
        std::string error;
        server = serve::Server::create(opts, &error);
        if (server)
            runner = std::thread([this]() { server->run(); });
    }

    ~ObsServer()
    {
        if (server) {
            server->shutdown();
            runner.join();
        }
    }
};

/** Submit `req` and return the named event's payload (null Value if
 * the event never arrived). */
json::Value
submitFor(const std::string &socket, const serve::Request &req,
          const std::string &event_kind)
{
    std::string error;
    auto client = serve::Client::connectUnix(socket, &error);
    EXPECT_NE(client, nullptr) << error;
    json::Value payload;
    if (!client)
        return payload;
    EXPECT_EQ(client->submit(
                  req,
                  [&payload, &event_kind](const json::Value &event,
                                          const std::string &) {
                      if (event.getString("event") == event_kind)
                          payload = event;
                  },
                  &error),
              0)
        << error;
    return payload;
}

TEST_F(ObsTest, MetricsCommandReportsEngineAndStoreTraffic)
{
    fs::path store_dir =
        fs::temp_directory_path() /
        ("gls_obs_store_" + std::to_string(::getpid()));
    fs::remove_all(store_dir);
    fs::create_directories(store_dir);

    serve::Request sweep;
    sweep.cmd = "sweep";
    sweep.id = "p1";
    sweep.tests = {{"mp", "", ""}};
    sweep.chips = {"Titan"};
    sweep.models = {"none"};
    sweep.columns = {16};
    sweep.iterations = 1000;

    serve::Request metrics;
    metrics.cmd = "metrics";
    metrics.id = "m";

    // Cold daemon: the sweep computes, misses then feeds the store.
    {
        ObsServer ts(store_dir.string(), "cold");
        ASSERT_NE(ts.server, nullptr);
        submitFor(ts.socket, sweep, "summary");
        json::Value payload =
            submitFor(ts.socket, metrics, "metrics");
        EXPECT_TRUE(payload.getBool("enabled", false));
        const json::Value *m = payload.find("metrics");
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->getInt("engine_jobs_total", -1), 1);
        // Counters register on first tick: the cold run never hits
        // the store, so the counter may be absent — absent reads 0.
        EXPECT_EQ(m->getInt("engine_jobs_from_store_total", 0), 0);
        EXPECT_GE(m->getInt("store_misses_total", 0), 1);
        EXPECT_GE(m->getInt("store_appends_total", 0), 1);
        EXPECT_GE(m->getInt("serve_requests_total", 0), 1);
        EXPECT_GE(m->getInt("serve_clients_connected", 0), 1);
        std::string prom = payload.getString("prometheus");
        EXPECT_NE(prom.find("gpulitmus_serve_requests_total"),
                  std::string::npos);
    }

    // Warm re-submit against a fresh daemon on the same store: the
    // persistent store answers and the hit counter flips.
    obs::Registry::instance().reset();
    {
        ObsServer ts(store_dir.string(), "warm");
        ASSERT_NE(ts.server, nullptr);
        serve::Request again = sweep;
        again.id = "p2";
        submitFor(ts.socket, again, "summary");
        json::Value payload =
            submitFor(ts.socket, metrics, "metrics");
        const json::Value *m = payload.find("metrics");
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->getInt("engine_jobs_total", -1), 1);
        EXPECT_EQ(m->getInt("engine_jobs_from_store_total", -1), 1);
        EXPECT_GE(m->getInt("store_hits_total", 0), 1);
    }

    // The daemon runs the same engine as the batch path, so the same
    // grid ticks the same job counters: submit-vs-batch parity.
    obs::Registry::instance().reset();
    harness::Engine batch;
    batch.run({simJob(pl::mp(), 1000)});
    EXPECT_EQ(obs::counter("engine_jobs_total").value(), 1u);

    fs::remove_all(store_dir);
}

} // namespace
} // namespace gpulitmus
