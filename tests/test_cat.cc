/**
 * @file
 * Unit tests for the .cat DSL: parsing, operator semantics, filters,
 * parameterised relations, and the built-in models' structure.
 */

#include <gtest/gtest.h>

#include "axiom/enumerate.h"
#include "cat/models.h"
#include "litmus/library.h"
#include "model/baseline.h"

namespace gpulitmus::cat {
namespace {

axiom::Execution
firstExecution(const litmus::Test &t)
{
    auto execs = axiom::enumerateExecutions(t);
    EXPECT_FALSE(execs.empty());
    return execs.front();
}

TEST(CatParse, AcceptsPaperModels)
{
    CatError err;
    EXPECT_TRUE(Model::parse(models::ptxSource(), "ptx", &err))
        << err.message;
    EXPECT_TRUE(Model::parse(models::rmoSource(), "rmo", &err))
        << err.message;
    EXPECT_TRUE(Model::parse(models::scSource(), "sc", &err))
        << err.message;
    EXPECT_TRUE(Model::parse(models::tsoSource(), "tso", &err))
        << err.message;
    EXPECT_TRUE(Model::parse(
        gpulitmus::model::operationalBaselineSource(), "op", &err))
        << err.message;
}

TEST(CatParse, RejectsBadSyntax)
{
    CatError err;
    EXPECT_FALSE(Model::parse("let = rf", "bad", &err));
    EXPECT_FALSE(Model::parse("acyclic (rf | co", "bad", &err));
    EXPECT_FALSE(Model::parse("frobnicate rf", "bad", &err));
    EXPECT_FALSE(Model::parse("let a(x = rf", "bad", &err));
}

TEST(CatParse, CheckNamesInOrder)
{
    const Model &ptx = models::ptx();
    auto names = ptx.checkNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "sc-per-loc-llh");
    EXPECT_EQ(names[1], "no-thin-air");
    EXPECT_EQ(names[2], "cta-constraint");
    EXPECT_EQ(names[3], "gl-constraint");
    EXPECT_EQ(names[4], "sys-constraint");
}

TEST(CatEval, UnionInterDiffSemantics)
{
    Model m = Model::parseOrDie(R"(
let u = rf | co
let i = u & co
let d = u \ co
acyclic u as u-check
)",
                                "ops");
    auto ex = firstExecution(litmus::paperlib::mp());
    auto u = m.relation("u", ex);
    auto i = m.relation("i", ex);
    auto d = m.relation("d", ex);
    ASSERT_TRUE(u && i && d);
    EXPECT_EQ(*u, ex.rf | ex.co);
    EXPECT_EQ(*i, ex.co);
    EXPECT_EQ(*d, ex.rf.minus(ex.co));
}

TEST(CatEval, SeqClosureInverse)
{
    Model m = Model::parseOrDie(R"(
let s = rf ; po
let p = po+
let st = po*
let mb = po?
let inv = rf^-1
acyclic p as p-check
)",
                                "ops2");
    auto ex = firstExecution(litmus::paperlib::mp());
    EXPECT_EQ(*m.relation("s", ex), ex.rf.seq(ex.po));
    EXPECT_EQ(*m.relation("p", ex), ex.po.plus());
    EXPECT_EQ(*m.relation("st", ex), ex.po.star());
    EXPECT_EQ(*m.relation("mb", ex), ex.po.maybe());
    EXPECT_EQ(*m.relation("inv", ex), ex.rf.inverse());
}

TEST(CatEval, FiltersSelectEventClasses)
{
    Model m = Model::parseOrDie(R"(
let ww = WW(po)
let wr = WR(po)
let rw = RW(po)
let rr = RR(po)
acyclic ww as ww-check
)",
                                "filters");
    auto ex = firstExecution(litmus::paperlib::mp());
    auto check = [&](const char *name, bool dom_w, bool rng_w) {
        auto r = m.relation(name, ex);
        ASSERT_TRUE(r.has_value());
        for (const auto &[i, j] : r->pairs()) {
            EXPECT_EQ(ex.events[i].isWrite(), dom_w);
            EXPECT_EQ(ex.events[j].isWrite(), rng_w);
        }
    };
    check("ww", true, true);
    check("wr", true, false);
    check("rw", false, true);
    check("rr", false, false);
}

TEST(CatEval, ParameterisedLet)
{
    Model m = Model::parseOrDie(R"(
let pair(a, b) = a | b
let both = pair(rf, co)
acyclic both as both-check
)",
                                "params");
    auto ex = firstExecution(litmus::paperlib::mp());
    EXPECT_EQ(*m.relation("both", ex), ex.rf | ex.co);
}

TEST(CatEval, CommentsIgnored)
{
    Model m = Model::parseOrDie(R"(
(* a block comment
   over two lines *)
let x = rf // trailing comment
acyclic x as x-check
)",
                                "comments");
    auto ex = firstExecution(litmus::paperlib::mp());
    EXPECT_EQ(*m.relation("x", ex), ex.rf);
}

TEST(CatEval, EmptyAndIrreflexiveChecks)
{
    Model m = Model::parseOrDie(R"(
empty (rf & co) as rf-is-not-co
irreflexive po as po-irrefl
)",
                                "checks");
    auto ex = firstExecution(litmus::paperlib::mp());
    ModelResult res = m.evaluate(ex);
    ASSERT_EQ(res.checks.size(), 2u);
    EXPECT_TRUE(res.checks[0].passed);
    EXPECT_TRUE(res.checks[1].passed);
    EXPECT_TRUE(res.allowed);
}

TEST(CatEval, FailedAcyclicReportsCycle)
{
    Model m = Model::parseOrDie("acyclic (po | po^-1) as bad",
                                "cycle");
    auto ex = firstExecution(litmus::paperlib::mp());
    ModelResult res = m.evaluate(ex);
    EXPECT_FALSE(res.allowed);
    EXPECT_EQ(res.firstFailure(), "bad");
    EXPECT_FALSE(res.checks[0].cycle.empty());
}

TEST(CatEval, ScPerLocLlhAllowsCoRRShape)
{
    // The llh variant must pass on an execution where two po-ordered
    // same-address reads see new-then-old values, while the full
    // version fails (Sec. 5.2.2).
    const Model &ptx = models::ptx();
    const Model &full = models::scPerLocFull();
    bool llh_allows_weak = false;
    bool full_allows_weak = false;
    for (const auto &ex :
         axiom::enumerateExecutions(litmus::paperlib::coRR())) {
        if (ex.finalState.reg(1, "r1") == 1 &&
            ex.finalState.reg(1, "r2") == 0) {
            llh_allows_weak |= ptx.evaluate(ex).allowed;
            full_allows_weak |= full.evaluate(ex).allowed;
        }
    }
    EXPECT_TRUE(llh_allows_weak);
    EXPECT_FALSE(full_allows_weak);
}

TEST(CatModels, AllBuiltinsEvaluate)
{
    auto ex = firstExecution(litmus::paperlib::sb());
    for (const auto &[name, model] : models::all()) {
        ModelResult res = model->evaluate(ex);
        EXPECT_FALSE(res.checks.empty()) << name;
    }
}

} // namespace
} // namespace gpulitmus::cat
