/**
 * @file
 * Unit tests for the chip registry and the operational machine:
 * determinism, incantation column encoding, per-chip weak-behaviour
 * signatures, fence semantics, and per-location coherence invariants
 * under randomised stress (property sweeps).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/hash.h"
#include "litmus/library.h"
#include "litmus/outcome.h"
#include "sim/machine.h"

namespace gpulitmus::sim {
namespace {

namespace pl = litmus::paperlib;

uint64_t
countWeak(const ChipProfile &chip, const litmus::Test &test,
          Incantations inc, uint64_t iters, uint64_t seed = 7)
{
    MachineOptions opts;
    opts.inc = inc;
    Machine machine(chip, test, opts);
    Rng rng(seed);
    uint64_t weak = 0;
    for (uint64_t i = 0; i < iters; ++i)
        weak += test.condition.eval(machine.run(rng));
    return weak;
}

TEST(Chips, RegistryMatchesTable1)
{
    EXPECT_EQ(allChips().size(), 8u);
    EXPECT_EQ(resultChips().size(), 7u); // GTX 280 omitted
    EXPECT_EQ(chip("Titan").chipName, "GTX Titan");
    EXPECT_EQ(chip("TesC").arch, "Fermi");
    EXPECT_EQ(chip("HD7970").arch, "GCN 1.0");
    EXPECT_TRUE(chip("HD6570").isAmd());
    EXPECT_TRUE(chip("GTX7").isNvidia());
    EXPECT_EQ(chip("GTX6").sdk, "5.0"); // Tab. 4
}

TEST(Chips, CoRRSignature)
{
    // Fermi and Kepler allow the load-load hazard; Maxwell, Tesla and
    // AMD do not (Fig. 1).
    EXPECT_TRUE(chip("GTX5").allowCoRR);
    EXPECT_TRUE(chip("TesC").allowCoRR);
    EXPECT_TRUE(chip("GTX6").allowCoRR);
    EXPECT_TRUE(chip("Titan").allowCoRR);
    EXPECT_FALSE(chip("GTX7").allowCoRR);
    EXPECT_FALSE(chip("GTX280").allowCoRR);
    EXPECT_FALSE(chip("HD6570").allowCoRR);
    EXPECT_FALSE(chip("HD7970").allowCoRR);
}

TEST(Incantations, ColumnRoundTrip)
{
    for (int col = 1; col <= 16; ++col)
        EXPECT_EQ(Incantations::fromColumn(col).column(), col);
}

TEST(Incantations, Column16IsAll)
{
    Incantations inc = Incantations::fromColumn(16);
    EXPECT_TRUE(inc.memoryStress);
    EXPECT_TRUE(inc.bankConflicts);
    EXPECT_TRUE(inc.threadSync);
    EXPECT_TRUE(inc.threadRandomisation);
    EXPECT_EQ(Incantations::fromColumn(1).str(), "none");
}

TEST(Incantations, PaperColumnComparisons)
{
    // Columns 12 and 16 differ only by bank conflicts; 15 and 16 by
    // thread randomisation; 10 and 12 by thread synchronisation.
    auto c12 = Incantations::fromColumn(12);
    auto c16 = Incantations::fromColumn(16);
    EXPECT_NE(c12.bankConflicts, c16.bankConflicts);
    EXPECT_EQ(c12.memoryStress, c16.memoryStress);
    auto c15 = Incantations::fromColumn(15);
    EXPECT_NE(c15.threadRandomisation, c16.threadRandomisation);
    EXPECT_EQ(c15.bankConflicts, c16.bankConflicts);
    auto c10 = Incantations::fromColumn(10);
    EXPECT_NE(c10.threadSync, c12.threadSync);
    EXPECT_EQ(c10.threadRandomisation, c12.threadRandomisation);
}

TEST(Machine, DeterministicGivenSeed)
{
    litmus::Test test = pl::mp();
    Machine m1(chip("Titan"), test, {});
    Machine m2(chip("Titan"), test, {});
    Rng r1(99), r2(99);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(m1.run(r1), m2.run(r2));
}

TEST(Machine, SequentialExecutionIsCorrect)
{
    // Single thread, no concurrency: the machine must compute the
    // architecturally-correct result under any incantations.
    litmus::Test test = litmus::TestBuilder("seq")
                            .global("x", 5)
                            .thread("ld.cg r1,[x]; add r2,r1,10;"
                                    "st.cg [x],r2; ld.cg r3,[x]")
                            .intraCta()
                            .exists("0:r3=15 /\\ x=15")
                            .build();
    for (int col = 1; col <= 16; ++col) {
        MachineOptions opts;
        opts.inc = Incantations::fromColumn(col);
        Machine machine(chip("TesC"), test, opts);
        Rng rng(static_cast<uint64_t>(col));
        for (int i = 0; i < 50; ++i) {
            litmus::FinalState st = machine.run(rng);
            EXPECT_EQ(st.reg(0, "r3"), 15);
            EXPECT_EQ(st.loc("x"), 15);
        }
    }
}

TEST(Machine, GuardsAndBranches)
{
    litmus::Test test =
        litmus::TestBuilder("spin")
            .global("m", 0)
            .thread("LOOP: atom.cas r0,[m],0,1; setp.ne p0,r0,0;"
                    "@p0 bra LOOP; ld.cg r1,[m]")
            .intraCta()
            .exists("0:r1=1")
            .build();
    Machine machine(chip("Titan"), test, {});
    Rng rng(3);
    litmus::FinalState st = machine.run(rng);
    EXPECT_EQ(st.reg(0, "r1"), 1);
    EXPECT_EQ(st.loc("m"), 1);
}

TEST(Machine, NoWeakBehaviourWithoutIncantations)
{
    // Tab. 6 column 1 on Nvidia: nothing is observed.
    for (const char *t : {"mp", "sb", "lb"}) {
        litmus::Test test = t == std::string("mp") ? pl::mp()
                            : t == std::string("sb") ? pl::sb()
                                                     : pl::lb();
        EXPECT_EQ(countWeak(chip("Titan"), test,
                            Incantations::none(), 3000),
                  0u)
            << t;
    }
}

TEST(Machine, WeakBehavioursUnderFullIncantations)
{
    EXPECT_GT(countWeak(chip("Titan"), pl::mp(),
                        Incantations::all(), 5000),
              0u);
    EXPECT_GT(countWeak(chip("Titan"), pl::sb(),
                        Incantations::all(), 5000),
              0u);
    EXPECT_GT(countWeak(chip("Titan"), pl::coRR(),
                        Incantations::all(), 5000),
              0u);
    EXPECT_GT(countWeak(chip("HD7970"), pl::lb(),
                        Incantations::all(), 5000),
              0u);
}

TEST(Machine, MaxwellIsStrong)
{
    for (const litmus::Test &test :
         {pl::mp(), pl::sb(), pl::lb(), pl::coRR(), pl::mpVolatile(),
          pl::casSl(false)}) {
        EXPECT_EQ(countWeak(chip("GTX7"), test, Incantations::all(),
                            4000),
                  0u)
            << test.name;
    }
}

TEST(Machine, GlFencesRestoreMpSbLb)
{
    using ptx::Scope;
    for (const char *c : {"TesC", "GTX6", "Titan", "HD7970"}) {
        EXPECT_EQ(countWeak(chip(c), pl::mp(Scope::Gl),
                            Incantations::all(), 4000),
                  0u)
            << c;
        EXPECT_EQ(countWeak(chip(c), pl::sb(Scope::Gl),
                            Incantations::all(), 4000),
                  0u)
            << c;
        EXPECT_EQ(countWeak(chip(c), pl::lb(Scope::Gl),
                            Incantations::all(), 4000),
                  0u)
            << c;
    }
}

TEST(Machine, CtaFenceLeaksInterCtaOnTitan)
{
    // Sec. 6: lb+membar.ctas is observed inter-CTA...
    EXPECT_GT(countWeak(chip("Titan"), pl::lbMembarCtas(),
                        Incantations::all(), 60000),
              0u);
    // ...but the same fences forbid the intra-CTA variant (the model
    // forbids it, so the simulator must too).
    EXPECT_EQ(countWeak(chip("Titan"),
                        pl::lb(ptx::Scope::Cta, false),
                        Incantations::all(), 20000),
              0u);
}

TEST(Machine, CasSlRequiresStoreBufferOrAtomPass)
{
    EXPECT_EQ(countWeak(chip("GTX5"), pl::casSl(false),
                        Incantations::all(), 20000),
              0u);
    EXPECT_GT(countWeak(chip("Titan"), pl::casSl(false),
                        Incantations::all(), 60000),
              0u);
    EXPECT_GT(countWeak(chip("HD7970"), pl::casSl(false),
                        Incantations::all(), 60000),
              0u);
}

TEST(Machine, FencesFixTheProgrammingAssumptionTests)
{
    for (const char *c : {"TesC", "GTX6", "Titan", "HD7970"}) {
        EXPECT_EQ(countWeak(chip(c), pl::casSl(true),
                            Incantations::all(), 10000),
                  0u)
            << c;
        EXPECT_EQ(countWeak(chip(c), pl::dlbLb(true),
                            Incantations::all(), 10000),
                  0u)
            << c;
        EXPECT_EQ(countWeak(chip(c), pl::dlbMp(true),
                            Incantations::all(), 10000),
                  0u)
            << c;
    }
}

/**
 * Property sweep: per-location sequential consistency minus the
 * load-load hazard must hold in every simulated final state — a
 * single-location test can only ever end with the last coherence
 * value, and a same-thread read after a same-thread write must not
 * read an older value.
 */
class CoherenceInvariant
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(CoherenceInvariant, WriteReadSameThreadNeverStale)
{
    auto [chip_name, column] = GetParam();
    litmus::Test test =
        litmus::TestBuilder("wr-own")
            .global("x", 0)
            .thread("st.cg [x],1; ld.ca r1,[x]; ld.cg r2,[x]")
            .thread("st.cg [x],2")
            .interCta()
            .exists("0:r1=0 \\/ 0:r2=0")
            .build();
    MachineOptions opts;
    opts.inc = Incantations::fromColumn(column);
    Machine machine(chip(chip_name), test, opts);
    Rng rng(static_cast<uint64_t>(column) * 977);
    for (int i = 0; i < 3000; ++i) {
        litmus::FinalState st = machine.run(rng);
        // After writing 1, this thread may read 1 or 2, never 0.
        EXPECT_NE(st.reg(0, "r1"), 0);
        EXPECT_NE(st.reg(0, "r2"), 0);
        // Final value is one of the two writes.
        EXPECT_TRUE(st.loc("x") == 1 || st.loc("x") == 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ChipsAndColumns, CoherenceInvariant,
    ::testing::Combine(::testing::Values("GTX5", "TesC", "Titan",
                                         "GTX7", "HD7970"),
                       ::testing::Values(1, 6, 9, 12, 16)));

/** Same-thread same-location stores must never be reordered. */
class CoherenceWW
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(CoherenceWW, ProgramOrderOfWritesRespected)
{
    auto [chip_name, column] = GetParam();
    litmus::Test test = litmus::TestBuilder("coww")
                            .global("x", 0)
                            .thread("st.cg [x],1; st.cg [x],2")
                            .thread("ld.cg r1,[x]")
                            .interCta()
                            .exists("x=1")
                            .build();
    MachineOptions opts;
    opts.inc = Incantations::fromColumn(column);
    Machine machine(chip(chip_name), test, opts);
    Rng rng(static_cast<uint64_t>(column) * 1237);
    for (int i = 0; i < 3000; ++i) {
        litmus::FinalState st = machine.run(rng);
        EXPECT_EQ(st.loc("x"), 2) << "same-address stores reordered";
    }
}

INSTANTIATE_TEST_SUITE_P(
    ChipsAndColumns, CoherenceWW,
    ::testing::Combine(::testing::Values("GTX5", "TesC", "Titan",
                                         "GTX7", "HD6570", "HD7970"),
                       ::testing::Values(1, 6, 9, 12, 16)));

// ---------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------

/**
 * Samples every choice from an Rng exactly as RngChoice would (one
 * draw per decision, identical draw order), records every answer,
 * and captures a machine snapshot at the snapAt-th schedule pick.
 * The recorded tail then drives resume() for the roundtrip check.
 */
struct RecordingChoice final : ChoiceProvider
{
    Rng rng;
    Machine *machine;
    Machine::Snapshot snap;
    int snapAt;
    int schedules = 0;
    bool captured = false;
    size_t capturedAt = 0; ///< answer index at the snapshot
    std::vector<uint64_t> answers;

    RecordingChoice(uint64_t seed, Machine *m, int snap_at)
        : rng(seed), machine(m), snapAt(snap_at)
    {
    }

    uint64_t
    pick(ChoiceKind, uint64_t n) override
    {
        uint64_t v = rng.below(n);
        answers.push_back(v);
        return v;
    }

    bool
    chance(ChoiceKind, double p, bool) override
    {
        bool v = rng.chance(p);
        answers.push_back(v);
        return v;
    }

    size_t
    pickActor(const ActorOption *, size_t n) override
    {
        if (schedules++ == snapAt) {
            machine->snapshot(snap);
            captured = true;
            capturedAt = answers.size();
        }
        uint64_t v = rng.below(n);
        answers.push_back(v);
        return v;
    }

    int
    delayBump() override
    {
        int v = 2 + static_cast<int>(rng.below(4));
        answers.push_back(static_cast<uint64_t>(v));
        return v;
    }
};

/** Replays a recorded answer tail verbatim. */
struct ReplayTail final : ChoiceProvider
{
    const std::vector<uint64_t> *answers;
    size_t next;

    ReplayTail(const std::vector<uint64_t> &a, size_t from)
        : answers(&a), next(from)
    {
    }

    uint64_t pick(ChoiceKind, uint64_t) override { return take(); }
    bool chance(ChoiceKind, double, bool) override { return take() != 0; }
    size_t pickActor(const ActorOption *, size_t) override
    {
        return static_cast<size_t>(take());
    }
    int delayBump() override { return static_cast<int>(take()); }

    uint64_t
    take()
    {
        EXPECT_LT(next, answers->size()) << "replay tail exhausted";
        return (*answers)[next++];
    }
};

TEST(Snapshot, ResumeReproducesTheInterruptedRun)
{
    // Snapshot at the k-th scheduling step mid-run, then resume from
    // it replaying the recorded choice tail: the final state must be
    // identical to the uninterrupted run's. Exercised across tests,
    // columns and snapshot depths.
    struct Case
    {
        litmus::Test test;
        int column;
    };
    const Case cases[] = {
        {pl::mp(), 16},
        {pl::sb(), 16},
        {pl::coRR(), 16},
        {pl::casSl(false), 12},
        {pl::mp(), 6},
    };
    for (const auto &c : cases) {
        for (int snap_at : {0, 2, 7, 19}) {
            MachineOptions opts;
            opts.inc = Incantations::fromColumn(c.column);
            Machine machine(chip("Titan"), c.test, opts);
            RecordingChoice recorder(0x5eed + snap_at, &machine,
                                     snap_at);
            litmus::FinalState full = machine.run(recorder);
            if (!recorder.captured)
                continue; // run ended before snap_at schedules
            ReplayTail tail(recorder.answers, recorder.capturedAt);
            litmus::FinalState resumed =
                machine.resume(recorder.snap, tail);
            EXPECT_EQ(full, resumed)
                << c.test.name << " column " << c.column
                << " snapAt " << snap_at;
        }
    }
}

TEST(Snapshot, HashStateMatchesEncodedStateEquality)
{
    // hashState and encodeState digest the same canonical traversal:
    // across many sampled runs, equal encodings must give equal
    // digests and distinct encodings distinct digests.
    litmus::Test mp = pl::mp();
    MachineOptions opts;
    opts.inc = Incantations::all();
    Machine machine(chip("Titan"), mp, opts);
    Rng rng(99);
    std::map<std::string, Digest128> seen;
    for (int i = 0; i < 400; ++i) {
        machine.run(rng);
        std::string enc;
        machine.encodeState(enc);
        Hash128 h;
        machine.hashState(h);
        Digest128 d = h.digest();
        auto it = seen.find(enc);
        if (it != seen.end()) {
            EXPECT_EQ(it->second, d);
        } else {
            for (const auto &[other, digest] : seen)
                EXPECT_FALSE(digest == d)
                    << "digest collision between distinct encodings";
            seen.emplace(std::move(enc), d);
        }
    }
    EXPECT_GT(seen.size(), 1u);
}

TEST(Snapshot, OutcomeDigestMatchesFinalStateEquality)
{
    litmus::Test mp = pl::mp();
    MachineOptions opts;
    opts.inc = Incantations::all();
    Machine machine(chip("Titan"), mp, opts);
    Rng rng(7);
    std::map<litmus::FinalState, Digest128> seen;
    for (int i = 0; i < 300; ++i) {
        RngChoice cp(rng);
        ASSERT_TRUE(machine.runLight(cp));
        litmus::FinalState st = machine.finalState();
        Digest128 d = machine.outcomeDigest();
        auto it = seen.find(st);
        if (it != seen.end()) {
            EXPECT_EQ(it->second, d);
        } else {
            for (const auto &[other, digest] : seen)
                EXPECT_FALSE(digest == d)
                    << "outcome-digest collision";
            seen.emplace(st, d);
        }
    }
    EXPECT_GT(seen.size(), 2u);
}

TEST(Snapshot, SetOptionsReparameterisesWithoutRecompiling)
{
    // One machine serving two incantation columns must match fresh
    // machines built per column, draw for draw.
    litmus::Test mp = pl::mp();
    MachineOptions col16;
    col16.inc = Incantations::fromColumn(16);
    MachineOptions col1;
    col1.inc = Incantations::fromColumn(1);

    Machine shared(chip("Titan"), mp, col16);
    Machine fresh16(chip("Titan"), mp, col16);
    Machine fresh1(chip("Titan"), mp, col1);

    Rng a(42), b(42);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(shared.run(a), fresh16.run(b));

    shared.setOptions(col1);
    Rng c(43), d(43);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(shared.run(c), fresh1.run(d));

    shared.setOptions(col16);
    Rng e(44), f(44);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(shared.run(e), fresh16.run(f));
}

} // namespace
} // namespace gpulitmus::sim
