/**
 * @file
 * Tests for the mock assembler, optcheck and the AMD OpenCL pipeline
 * (Sec. 4.4 and the compiler rows of Tab. 2).
 */

#include <gtest/gtest.h>

#include "litmus/library.h"
#include "litmus/parser.h"
#include "opt/amd.h"
#include "opt/optcheck.h"
#include "opt/ptxas.h"

namespace gpulitmus::opt {
namespace {

namespace pl = litmus::paperlib;

int
memAccessCount(const SassThread &t)
{
    int n = 0;
    for (const auto &i : t.instrs)
        n += i.kind == SassInstr::Kind::MemAccess;
    return n;
}

TEST(Ptxas, O3PreservesAccessesOneToOne)
{
    litmus::Test test = pl::mp();
    PtxasOptions opts;
    opts.optLevel = 3;
    SassProgram sass = assemble(test, opts);
    ASSERT_EQ(sass.threads.size(), 2u);
    EXPECT_EQ(memAccessCount(sass.threads[0]), 2);
    EXPECT_EQ(memAccessCount(sass.threads[1]), 2);
    EXPECT_TRUE(optcheck(sass).ok);
}

TEST(Ptxas, O0InsertsFiller)
{
    PtxasOptions o0;
    o0.optLevel = 0;
    PtxasOptions o3;
    o3.optLevel = 3;
    SassProgram with_filler = assemble(pl::mp(), o0);
    SassProgram without = assemble(pl::mp(), o3);
    auto fillers = [](const SassProgram &p) {
        int n = 0;
        for (const auto &t : p.threads)
            for (const auto &i : t.instrs)
                n += i.kind == SassInstr::Kind::Filler;
        return n;
    };
    EXPECT_GT(fillers(with_filler), 0);
    EXPECT_EQ(fillers(without), 0);
    // Filler never breaks the specification.
    EXPECT_TRUE(optcheck(with_filler).ok);
}

TEST(Ptxas, O3RemovesXorSelfDependency)
{
    // Fig. 13a: the xor-with-self chain is provably zero and removed.
    litmus::Test test =
        litmus::TestBuilder("dep-xor")
            .global("x", 0)
            .global("y", 0)
            .regLoc(0, "r4", "y")
            .thread("ld.cg r1,[x]; xor.b32 r2,r1,r1;"
                    "cvt.u64.u32 r3,r2; add.u64 r4,r4,r3;"
                    "ld.cg r5,[r4]")
            .intraCta()
            .exists("0:r5=0")
            .build();
    PtxasOptions o3;
    o3.optLevel = 3;
    SassProgram sass = assemble(test, o3);
    EXPECT_FALSE(sass.notes.empty());
    // Lowered test has no ALU chain left between the loads.
    litmus::Test compiled = sassToTest(test, sass);
    int alu = 0;
    for (const auto &in : compiled.program.threads[0].instrs)
        alu += !in.isMemAccess() && !in.isFence();
    EXPECT_EQ(alu, 0);
}

TEST(Ptxas, O3KeepsAndHighBitDependency)
{
    // Fig. 13b: and-with-0x80000000 needs inter-thread reasoning.
    litmus::Test test =
        litmus::TestBuilder("dep-and")
            .global("x", 0)
            .global("y", 0)
            .regLoc(0, "r4", "y")
            .thread("ld.cg r1,[x]; and.b32 r2,r1,0x80000000;"
                    "cvt.u64.u32 r3,r2; add.u64 r4,r4,r3;"
                    "ld.cg r5,[r4]")
            .intraCta()
            .exists("0:r5=0")
            .build();
    PtxasOptions o3;
    o3.optLevel = 3;
    SassProgram sass = assemble(test, o3);
    EXPECT_TRUE(sass.notes.empty());
    litmus::Test compiled = sassToTest(test, sass);
    int alu = 0;
    for (const auto &in : compiled.program.threads[0].instrs)
        alu += !in.isMemAccess() && !in.isFence();
    EXPECT_EQ(alu, 3); // and, cvt, add all survive
}

TEST(Ptxas, Cuda55MaxwellVolatileBug)
{
    litmus::Test test =
        litmus::TestBuilder("vol-rr")
            .global("x", 0)
            .thread("ld.volatile r1,[x]; ld.volatile r2,[x]")
            .intraCta()
            .exists("0:r1=1 /\\ 0:r2=0")
            .build();
    PtxasOptions bad;
    bad.optLevel = 3;
    bad.sdkVersion = "5.5";
    bad.targetMaxwell = true;
    SassProgram sass = assemble(test, bad);
    EXPECT_FALSE(optcheck(sass).ok);
    EXPECT_FALSE(sass.notes.empty());

    // CUDA 6.0 does not reorder.
    PtxasOptions good = bad;
    good.sdkVersion = "6.0";
    EXPECT_TRUE(optcheck(assemble(test, good)).ok);
    // Nor does 5.5 on non-Maxwell targets.
    PtxasOptions kepler = bad;
    kepler.targetMaxwell = false;
    EXPECT_TRUE(optcheck(assemble(test, kepler)).ok);
}

TEST(Optcheck, SpecEncodingRoundTrip)
{
    uint32_t w = encodeSpec(AccessType::LoadCa, 3);
    EXPECT_EQ(w & kSpecMagicMask, kSpecMagic);
    EXPECT_EQ((w >> 8) & 0xf,
              static_cast<uint32_t>(AccessType::LoadCa));
    EXPECT_EQ(w & 0xff, 3u);
}

TEST(Optcheck, DetectsRemovedAccess)
{
    litmus::Test test = pl::mp();
    PtxasOptions opts;
    SassProgram sass = assemble(test, opts);
    // Drop one real access behind the specification's back.
    auto &instrs = sass.threads[0].instrs;
    for (size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].kind == SassInstr::Kind::MemAccess) {
            instrs.erase(instrs.begin() +
                         static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    CheckResult res = optcheck(sass);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.threads[0].problems.empty());
}

TEST(Optcheck, DetectsReorderedAccesses)
{
    litmus::Test test = pl::mp();
    SassProgram sass = assemble(test, {});
    auto &instrs = sass.threads[1].instrs;
    SassInstr *first = nullptr;
    SassInstr *second = nullptr;
    for (auto &i : instrs) {
        if (i.kind != SassInstr::Kind::MemAccess)
            continue;
        if (!first)
            first = &i;
        else if (!second)
            second = &i;
    }
    ASSERT_TRUE(first && second);
    std::swap(*first, *second);
    EXPECT_FALSE(optcheck(sass).ok);
}

TEST(Amd, Gcn10RemovesFenceBetweenLoads)
{
    auto result = amdCompile(pl::mp(ptx::Scope::Gl),
                             sim::chip("HD7970"));
    EXPECT_FALSE(result.quirks.empty());
    // Reader thread lost its fence; writer thread kept its (between
    // two stores).
    int fences_t1 = 0;
    for (const auto &in : result.compiled.program.threads[1].instrs)
        fences_t1 += in.isFence();
    EXPECT_EQ(fences_t1, 0);
    int fences_t0 = 0;
    for (const auto &in : result.compiled.program.threads[0].instrs)
        fences_t0 += in.isFence();
    EXPECT_EQ(fences_t0, 1);
    EXPECT_FALSE(result.miscompiled); // legality is disputed, not n/a
}

TEST(Amd, FenceErasureRemapsLabelsPastTheErasedSlot)
{
    // A labelled spin loop *after* an erased fence: the branch
    // target must shift down with the instructions or the loop
    // silently re-enters one instruction late (scenarios made
    // labelled programs reachable through amdCompile).
    auto test = litmus::parseTest(R"(GPU_PTX label-shift
{global x=0; global f=0;}
 T0              | T1                  ;
 st.cg.s32 [x],1 | ld.cg.s32 r0,[x]    ;
 st.cg.s32 [f],1 | membar.gl           ;
                 | ld.cg.s32 r1,[x]    ;
                 | SPIN:               ;
                 | ld.cg.s32 r2,[f]    ;
                 | setp.eq.s32 p0,r2,0 ;
                 | @p0 bra SPIN        ;
ScopeTree(grid(cta((warp T0)) cta((warp T1))))
exists ((1:r2=1))
)");
    ASSERT_TRUE(test.has_value());
    ASSERT_EQ(test->program.threads[1].labelTarget("SPIN"), 3);

    auto result = amdCompile(*test, sim::chip("HD7970"), true);
    const auto &t1 = result.compiled.program.threads[1];
    int fences = 0;
    for (const auto &in : t1.instrs)
        fences += in.isFence();
    ASSERT_EQ(fences, 0); // the ld/membar/ld fence was erased
    // SPIN still binds the re-load of f, one slot earlier now.
    ASSERT_EQ(t1.labelTarget("SPIN"), 2);
    EXPECT_EQ(t1.instrs[t1.labelTarget("SPIN")].op, ptx::Opcode::Ld);
    EXPECT_EQ(t1.instrs[t1.labelTarget("SPIN")].addr.sym, "f");
}

TEST(Amd, TeraScale2ReordersLoadPastCas)
{
    auto result =
        amdCompile(pl::dlbLb(false), sim::chip("HD6570"));
    EXPECT_TRUE(result.miscompiled);
    // T1 now starts with the CAS.
    const auto &t1 = result.compiled.program.threads[1].instrs;
    EXPECT_EQ(t1[0].op, ptx::Opcode::AtomCas);
    EXPECT_EQ(t1[1].op, ptx::Opcode::Ld);
}

TEST(Amd, Hd7970DoesNotReorderLoadCas)
{
    auto result =
        amdCompile(pl::dlbLb(false), sim::chip("HD7970"));
    EXPECT_FALSE(result.miscompiled);
}

TEST(Amd, CoalescingSuppressedByDefault)
{
    auto with_suppression =
        amdCompile(pl::coRR(), sim::chip("HD7970"), true);
    EXPECT_FALSE(with_suppression.miscompiled);
    auto without =
        amdCompile(pl::coRR(), sim::chip("HD7970"), false);
    EXPECT_TRUE(without.miscompiled);
    // The second load became a register move.
    const auto &t1 = without.compiled.program.threads[1].instrs;
    EXPECT_EQ(t1[1].op, ptx::Opcode::Mov);
}

TEST(Amd, UntouchedTestPassesThrough)
{
    auto result = amdCompile(pl::sb(), sim::chip("HD7970"));
    EXPECT_TRUE(result.quirks.empty());
    EXPECT_EQ(result.compiled.program.numInstructions(),
              pl::sb().program.numInstructions());
}

TEST(SassToTest, RunnableAndEquivalentShape)
{
    litmus::Test test = pl::casSl(false);
    SassProgram sass = assemble(test, {});
    litmus::Test compiled = sassToTest(test, sass);
    EXPECT_EQ(compiled.program.numThreads(),
              test.program.numThreads());
    int orig_mem = 0, compiled_mem = 0;
    for (const auto &t : test.program.threads)
        for (const auto &i : t.instrs)
            orig_mem += i.isMemAccess();
    for (const auto &t : compiled.program.threads)
        for (const auto &i : t.instrs)
            compiled_mem += i.isMemAccess();
    EXPECT_EQ(orig_mem, compiled_mem);
}

} // namespace
} // namespace gpulitmus::opt
