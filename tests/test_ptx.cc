/**
 * @file
 * Unit tests for the PTX IR: instruction parsing (paper shorthand and
 * full spellings), printing round-trips, and program/label handling.
 */

#include <gtest/gtest.h>

#include "ptx/parser.h"

namespace gpulitmus::ptx {
namespace {

Instruction
parse1(const std::string &text)
{
    ParseError err;
    auto i = parseInstruction(text, &err);
    EXPECT_TRUE(i.has_value()) << text << ": " << err.message;
    return i.value_or(Instruction{});
}

TEST(PtxParser, LoadWithCacheOp)
{
    Instruction i = parse1("ld.cg r1,[x]");
    EXPECT_EQ(i.op, Opcode::Ld);
    EXPECT_EQ(i.cacheOp, CacheOp::Cg);
    EXPECT_EQ(i.dst, "r1");
    EXPECT_TRUE(i.addr.isSym());
    EXPECT_EQ(i.addr.sym, "x");
}

TEST(PtxParser, LoadCaTargetsL1)
{
    Instruction i = parse1("ld.ca r2,[y]");
    EXPECT_EQ(i.cacheOp, CacheOp::Ca);
}

TEST(PtxParser, LoadFullSpelling)
{
    Instruction i = parse1("ld.global.cg.s32 r1,[r3]");
    EXPECT_EQ(i.space, Space::Global);
    EXPECT_EQ(i.cacheOp, CacheOp::Cg);
    EXPECT_EQ(i.type, DataType::S32);
    EXPECT_TRUE(i.addr.isReg());
    EXPECT_EQ(i.addr.reg, "r3");
}

TEST(PtxParser, StoreImmediate)
{
    Instruction i = parse1("st.cg [x],1");
    EXPECT_EQ(i.op, Opcode::St);
    ASSERT_EQ(i.srcs.size(), 1u);
    EXPECT_TRUE(i.srcs[0].isImm());
    EXPECT_EQ(i.srcs[0].imm, 1);
}

TEST(PtxParser, StoreRegister)
{
    Instruction i = parse1("st.cg.s32 [r1],r0");
    EXPECT_TRUE(i.srcs[0].isReg());
    EXPECT_EQ(i.srcs[0].reg, "r0");
}

TEST(PtxParser, VolatileAccesses)
{
    EXPECT_TRUE(parse1("ld.volatile r1,[y]").isVolatile);
    EXPECT_TRUE(parse1("st.volatile [x],1").isVolatile);
    EXPECT_TRUE(parse1("st.volatile.s32 [x],1").isVolatile);
}

TEST(PtxParser, MembarScopes)
{
    EXPECT_EQ(parse1("membar.cta").scope, Scope::Cta);
    EXPECT_EQ(parse1("membar.gl").scope, Scope::Gl);
    EXPECT_EQ(parse1("membar.sys").scope, Scope::Sys);
    EXPECT_TRUE(parse1("membar.gl").isFence());
}

TEST(PtxParser, AtomicCas)
{
    Instruction i = parse1("atom.cas r0,[h],0,1");
    EXPECT_EQ(i.op, Opcode::AtomCas);
    EXPECT_TRUE(i.isAtomic());
    EXPECT_TRUE(i.readsMemory());
    EXPECT_TRUE(i.writesMemory());
    ASSERT_EQ(i.srcs.size(), 2u);
    EXPECT_EQ(i.srcs[0].imm, 0);
    EXPECT_EQ(i.srcs[1].imm, 1);
}

TEST(PtxParser, AtomicExch)
{
    Instruction i = parse1("atom.exch r0,[m],0");
    EXPECT_EQ(i.op, Opcode::AtomExch);
    EXPECT_EQ(i.dst, "r0");
}

TEST(PtxParser, AtomicInc)
{
    Instruction i = parse1("atom.inc r0,[c]");
    EXPECT_EQ(i.op, Opcode::AtomInc);
}

TEST(PtxParser, AtomWithTypeAndSpace)
{
    Instruction i = parse1("atom.global.cas.b32 r0,[h],0,1");
    EXPECT_EQ(i.op, Opcode::AtomCas);
    EXPECT_EQ(i.space, Space::Global);
}

TEST(PtxParser, AluOps)
{
    Instruction i = parse1("add r2,r2,1");
    EXPECT_EQ(i.op, Opcode::Add);
    EXPECT_EQ(i.dst, "r2");

    Instruction a = parse1("and.b32 r2,r1,0x80000000");
    EXPECT_EQ(a.op, Opcode::And);
    EXPECT_EQ(a.srcs[1].imm, 0x80000000LL);

    Instruction x = parse1("xor.b32 r2,r1,r1");
    EXPECT_EQ(x.op, Opcode::Xor);
}

TEST(PtxParser, SetpAndGuards)
{
    Instruction s = parse1("setp.eq p4,r0,0");
    EXPECT_EQ(s.op, Opcode::SetpEq);
    EXPECT_EQ(s.dst, "p4");

    Instruction g = parse1("@!p4 ld.cg r1,[d]");
    EXPECT_TRUE(g.hasGuard);
    EXPECT_TRUE(g.guardNegated);
    EXPECT_EQ(g.guardReg, "p4");
    EXPECT_EQ(g.op, Opcode::Ld);

    // The paper's bare guard style.
    Instruction b = parse1("!p4 membar.gl");
    EXPECT_TRUE(b.hasGuard);
    EXPECT_TRUE(b.guardNegated);
    EXPECT_EQ(b.op, Opcode::Membar);

    Instruction p = parse1("p1 membar.gl");
    EXPECT_TRUE(p.hasGuard);
    EXPECT_FALSE(p.guardNegated);
    EXPECT_EQ(p.guardReg, "p1");
}

TEST(PtxParser, CvtAndMov)
{
    Instruction c = parse1("cvt.u64.u32 r3,r2");
    EXPECT_EQ(c.op, Opcode::Cvt);
    Instruction m = parse1("mov.s32 r0,1");
    EXPECT_EQ(m.op, Opcode::Mov);
    EXPECT_EQ(m.srcs[0].imm, 1);
}

TEST(PtxParser, Bra)
{
    Instruction i = parse1("bra LOOP");
    EXPECT_EQ(i.op, Opcode::Bra);
    EXPECT_EQ(i.target, "LOOP");
}

TEST(PtxParser, RejectsBadInput)
{
    ParseError err;
    EXPECT_FALSE(parseInstruction("frobnicate r1,[x]", &err));
    EXPECT_FALSE(parseInstruction("", &err));
    EXPECT_FALSE(parseInstruction("ld.cg r1", &err));
    EXPECT_FALSE(parseInstruction("st.cg [x]", &err));
    EXPECT_FALSE(parseInstruction("atom.cas r0,[h],0", &err));
    EXPECT_FALSE(parseInstruction("ld.zz r1,[x]", &err));
}

TEST(PtxParser, RegsReadWritten)
{
    Instruction i = parse1("@p1 st.cg.s32 [r1],r0");
    auto regs = i.regsRead();
    EXPECT_EQ(regs.size(), 3u); // guard, addr, value
    EXPECT_EQ(i.regWritten(), "");

    Instruction l = parse1("ld.cg r5,[r6]");
    EXPECT_EQ(l.regWritten(), "r5");
}

class RoundTripTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RoundTripTest, PrintParsePrintIsStable)
{
    Instruction first = parse1(GetParam());
    Instruction second = parse1(first.str());
    EXPECT_EQ(first, second) << "printed as: " << first.str();
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, RoundTripTest,
    ::testing::Values(
        "ld.cg r1,[x]", "ld.ca r2,[y]", "ld.volatile r1,[y]",
        "ld.global.cg.s32 r1,[r3]", "st.cg [x],1",
        "st.volatile [x],1", "st.cg.s32 [r1],r0", "membar.cta",
        "membar.gl", "membar.sys", "atom.cas r0,[h],0,1",
        "atom.exch r0,[m],0", "atom.inc r0,[c]", "mov.s32 r0,1",
        "add r2,r2,1", "and.b32 r2,r1,0x80000000",
        "xor.b32 r2,r1,r1", "setp.eq p4,r0,0", "@!p4 ld.cg r1,[d]",
        "@p2 membar.gl", "bra END", "cvt.u64.u32 r3,r2"));

TEST(ThreadProgram, ParsesSequencesAndLabels)
{
    ptx::ParseError err;
    auto prog = parseThread(
        "mov r0,0\n"
        "LOOP: atom.cas r1,[m],0,1\n"
        "setp.ne p0,r1,0\n"
        "@p0 bra LOOP\n"
        "ld.cg r2,[x]",
        &err);
    ASSERT_TRUE(prog.has_value()) << err.message;
    EXPECT_EQ(prog->instrs.size(), 5u);
    EXPECT_EQ(prog->labelTarget("LOOP"), 1);
}

TEST(ThreadProgram, SemicolonSeparated)
{
    auto prog = parseThread("st.cg [x],1; membar.gl; st.cg [y],1");
    ASSERT_TRUE(prog.has_value());
    EXPECT_EQ(prog->instrs.size(), 3u);
    EXPECT_EQ(prog->instrs[1].op, Opcode::Membar);
}

TEST(ThreadProgram, CommentsStripped)
{
    auto prog = parseThread("st.cg [x],1 // write data\n"
                            "// whole-line comment\n"
                            "membar.gl");
    ASSERT_TRUE(prog.has_value());
    EXPECT_EQ(prog->instrs.size(), 2u);
}

TEST(Program, CountsAndRendering)
{
    Program p;
    p.threads.push_back(*parseThread("st.cg [x],1; st.cg [y],1"));
    p.threads.push_back(*parseThread("ld.cg r1,[y]; ld.cg r2,[x]"));
    EXPECT_EQ(p.numThreads(), 2);
    EXPECT_EQ(p.numInstructions(), 4);
    std::string s = p.str();
    EXPECT_NE(s.find("T0"), std::string::npos);
    EXPECT_NE(s.find("|"), std::string::npos);
}

} // namespace
} // namespace gpulitmus::ptx
