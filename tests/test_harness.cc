/**
 * @file
 * Tests for the harness: reproducibility, histogram integrity,
 * iteration plumbing, and the incidence ordering the incantations
 * induce (Tab. 6's qualitative claims).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "harness/campaign.h"
#include "litmus/library.h"

namespace gpulitmus::harness {
namespace {

namespace pl = litmus::paperlib;

TEST(Runner, HistogramTotalsMatchIterations)
{
    RunConfig cfg;
    cfg.iterations = 500;
    litmus::Histogram h = run(sim::chip("Titan"), pl::mp(), cfg);
    EXPECT_EQ(h.total(), 500u);
    uint64_t sum = 0;
    for (const auto &[key, count] : h.counts())
        sum += count;
    EXPECT_EQ(sum, 500u);
}

TEST(Runner, MachineReuseAcrossOptionsIsBitIdentical)
{
    // runJob serves every (chip, test) pair from one thread-local
    // compiled machine, re-parameterised per job via setOptions.
    // Interleaving columns and chips must leave each cell
    // bit-identical to what a freshly compiled machine computes.
    RunConfig c16;
    c16.iterations = 3000;
    c16.seed = 12345;
    c16.inc = sim::Incantations::fromColumn(16);
    RunConfig c1 = c16;
    c1.inc = sim::Incantations::fromColumn(1);

    litmus::Histogram first = run(sim::chip("Titan"), pl::mp(), c16);
    // Reconfigure the cached machine (same chip/test, column 1) and
    // touch a second chip and a second test in between.
    run(sim::chip("Titan"), pl::mp(), c1);
    run(sim::chip("GTX5"), pl::mp(), c16);
    run(sim::chip("Titan"), pl::sb(), c16);
    litmus::Histogram again = run(sim::chip("Titan"), pl::mp(), c16);
    EXPECT_EQ(first.counts(), again.counts());
    EXPECT_EQ(first.observed(), again.observed());
}

TEST(Runner, ReproducibleWithSameSeed)
{
    RunConfig cfg;
    cfg.iterations = 2000;
    litmus::Histogram a = run(sim::chip("TesC"), pl::sb(), cfg);
    litmus::Histogram b = run(sim::chip("TesC"), pl::sb(), cfg);
    EXPECT_EQ(a.observed(), b.observed());
    EXPECT_EQ(a.counts(), b.counts());
}

TEST(Runner, DifferentSeedsDiffer)
{
    RunConfig a_cfg, b_cfg;
    a_cfg.iterations = b_cfg.iterations = 5000;
    b_cfg.seed = a_cfg.seed + 1;
    litmus::Histogram a = run(sim::chip("Titan"), pl::sb(), a_cfg);
    litmus::Histogram b = run(sim::chip("Titan"), pl::sb(), b_cfg);
    // Weak counts fluctuate between seeds (they are samples).
    EXPECT_NE(a.counts(), b.counts());
}

TEST(Runner, ObservePer100kNormalises)
{
    RunConfig cfg;
    cfg.iterations = 1000;
    // A test whose condition always holds: final x=1 after one store.
    litmus::Test t = litmus::TestBuilder("always")
                         .global("x", 0)
                         .thread("st.cg [x],1")
                         .intraCta()
                         .exists("x=1")
                         .build();
    EXPECT_EQ(observePer100k(sim::chip("Titan"), t, cfg), 100000u);
}

TEST(Runner, DefaultIterationsFromEnv)
{
    setenv("GPULITMUS_ITERS", "1234", 1);
    EXPECT_EQ(defaultIterations(), 1234u);
    setenv("GPULITMUS_ITERS", "bogus", 1);
    EXPECT_EQ(defaultIterations(), 100000u);
    unsetenv("GPULITMUS_ITERS");
    EXPECT_EQ(defaultIterations(), 100000u);
}

TEST(Runner, MpAllOutcomesAppear)
{
    RunConfig cfg;
    cfg.iterations = 20000;
    litmus::Histogram h = run(sim::chip("Titan"), pl::mp(), cfg);
    // All four r1/r2 combinations should be reachable under stress.
    EXPECT_EQ(h.counts().size(), 4u);
}

TEST(Incantations, StressIsRequiredOnNvidia)
{
    RunConfig with, without;
    with.iterations = without.iterations = 8000;
    with.inc = sim::Incantations::all();
    without.inc = sim::Incantations::all();
    without.inc.memoryStress = false;
    without.inc.bankConflicts = false;
    EXPECT_GT(run(sim::chip("Titan"), pl::sb(), with).observed(), 0u);
    EXPECT_EQ(run(sim::chip("Titan"), pl::sb(), without).observed(),
              0u);
}

TEST(Incantations, AmdWeakWithoutStress)
{
    RunConfig cfg;
    cfg.iterations = 8000;
    cfg.inc = sim::Incantations::none();
    EXPECT_GT(run(sim::chip("HD7970"), pl::lb(), cfg).observed(), 0u);
}

TEST(Incantations, SyncIncreasesInterCtaIncidence)
{
    RunConfig base, sync;
    base.iterations = sync.iterations = 30000;
    base.inc = sim::Incantations::fromColumn(9);  // stress only
    sync.inc = sim::Incantations::fromColumn(11); // stress + sync
    uint64_t without_sync =
        run(sim::chip("Titan"), pl::sb(), base).observed();
    uint64_t with_sync =
        run(sim::chip("Titan"), pl::sb(), sync).observed();
    EXPECT_GT(with_sync, without_sync);
}

TEST(Incantations, BankConflictsNeededForCoRRWithoutStress)
{
    RunConfig bank_rand, rand_only;
    bank_rand.iterations = rand_only.iterations = 20000;
    bank_rand.inc = sim::Incantations::fromColumn(6); // bank + rand
    rand_only.inc = sim::Incantations::fromColumn(2); // rand alone
    EXPECT_GT(
        run(sim::chip("Titan"), pl::coRR(), bank_rand).observed(),
        0u);
    EXPECT_EQ(
        run(sim::chip("Titan"), pl::coRR(), rand_only).observed(),
        0u);
}

TEST(Incantations, BankConflictsDampenInterCtaOnNvidia)
{
    RunConfig c12, c16;
    c12.iterations = c16.iterations = 40000;
    c12.inc = sim::Incantations::fromColumn(12);
    c16.inc = sim::Incantations::fromColumn(16);
    uint64_t without_bank =
        run(sim::chip("Titan"), pl::lb(), c12).observed();
    uint64_t with_bank =
        run(sim::chip("Titan"), pl::lb(), c16).observed();
    EXPECT_GT(without_bank, with_bank);
}

// ---- campaign engine ------------------------------------------------

TEST(Campaign, GridIsRowMajorTestChipColumn)
{
    auto jobs = Campaign()
                    .iterations(100)
                    .test(pl::mp(), "mp")
                    .test(pl::sb(), "sb")
                    .overChips(std::vector<std::string>{"Titan",
                                                        "HD7970"})
                    .overColumns(9, 10)
                    .jobs();
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].label, "mp");
    EXPECT_EQ(jobs[0].chip.shortName, "Titan");
    EXPECT_EQ(jobs[0].inc.column(), 9);
    EXPECT_EQ(jobs[1].inc.column(), 10);
    EXPECT_EQ(jobs[2].chip.shortName, "HD7970");
    EXPECT_EQ(jobs[4].label, "sb");
    for (const auto &job : jobs)
        EXPECT_EQ(job.iterations, 100u);
}

TEST(Campaign, OverBackendsIsTheInnermostAxisAndDefaultsToSim)
{
    // Default: every grid job names the simulator.
    for (const auto &job :
         Campaign().iterations(50).test(pl::mp(), "mp").jobs())
        EXPECT_EQ(job.backend, kSimBackend);

    auto jobs = Campaign()
                    .iterations(50)
                    .test(pl::mp(), "mp")
                    .overChips(std::vector<std::string>{"Titan",
                                                        "TesC"})
                    .overBackends({kSimBackend, "ptx"})
                    .jobs();
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].chip.shortName, "Titan");
    EXPECT_EQ(jobs[0].backend, kSimBackend);
    EXPECT_EQ(jobs[1].chip.shortName, "Titan");
    EXPECT_EQ(jobs[1].backend, "ptx");
    EXPECT_EQ(jobs[2].chip.shortName, "TesC");
    EXPECT_EQ(jobs[2].backend, kSimBackend);
    EXPECT_EQ(jobs[3].backend, "ptx");
}

TEST(Campaign, JobKeysDistinguishChipsAndColumns)
{
    RunConfig cfg;
    Job a = Job::fromConfig(sim::chip("Titan"), pl::mp(), cfg);
    Job b = Job::fromConfig(sim::chip("TesC"), pl::mp(), cfg);
    Job c = a;
    c.inc = sim::Incantations::fromColumn(9);
    Job d = a;
    d.seed += 1;
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_NE(a.key(), d.key());
    // Iterations affect the cache identity but not the RNG stream.
    Job e = a;
    e.iterations *= 2;
    EXPECT_EQ(a.key(), e.key());
    EXPECT_EQ(a.derivedSeed(), e.derivedSeed());
    EXPECT_NE(a.cacheKey(), e.cacheKey());
}

TEST(Campaign, DeterministicAcrossThreadCounts)
{
    // The full Tab. 6 grid (16 columns) on two chips: histograms must
    // be bit-identical however the pool shards the jobs.
    auto sweep = [](int threads) {
        EngineOptions opts;
        opts.threads = threads;
        opts.cache = false;
        Engine engine(opts);
        return Campaign()
            .iterations(400)
            .test(pl::mp(), "mp")
            .overChips(std::vector<std::string>{"Titan", "HD7970"})
            .overColumns(1, 16)
            .run(engine);
    };
    auto serial = sweep(1);
    auto parallel = sweep(8);
    ASSERT_EQ(serial.size(), 32u);
    ASSERT_EQ(parallel.size(), 32u);
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].hist.counts(), parallel[i].hist.counts())
            << "cell " << i;
        EXPECT_EQ(serial[i].hist.observed(),
                  parallel[i].hist.observed());
    }
}

TEST(Campaign, WrapperReproducesCampaignHistograms)
{
    // harness::run must be seed-identical to the same cell inside a
    // batched campaign.
    RunConfig cfg;
    cfg.iterations = 1500;
    cfg.inc = sim::Incantations::fromColumn(12);
    litmus::Histogram direct = run(sim::chip("TesC"), pl::sb(), cfg);

    Engine engine;
    auto results =
        engine.run({Job::fromConfig(sim::chip("TesC"), pl::sb(), cfg)});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(direct.counts(), results[0].hist.counts());
    EXPECT_EQ(direct.observed(), results[0].hist.observed());
}

TEST(Campaign, CacheServesRepeatedCells)
{
    RunConfig cfg;
    cfg.iterations = 300;
    Job job = Job::fromConfig(sim::chip("Titan"), pl::mp(), cfg);

    Engine engine;
    // Duplicate cell within one batch: computed once, aliased once.
    // The alias keeps its own identity (label is not part of the
    // cache key) while reusing the computed histogram.
    Job renamed = job;
    renamed.label = "renamed";
    auto batch = engine.run({job, renamed});
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_FALSE(batch[0].fromCache);
    EXPECT_TRUE(batch[1].fromCache);
    EXPECT_EQ(batch[1].label(), "renamed");
    EXPECT_EQ(batch[0].hist.counts(), batch[1].hist.counts());
    EXPECT_EQ(engine.cacheHits(), 1u);
    EXPECT_EQ(engine.cacheSize(), 1u);

    // Same cell in a later run: served from the cache.
    auto again = engine.run({job});
    EXPECT_TRUE(again[0].fromCache);
    EXPECT_EQ(again[0].hist.counts(), batch[0].hist.counts());
    EXPECT_EQ(engine.cacheHits(), 2u);

    // A different cell misses.
    Job other = job;
    other.inc = sim::Incantations::fromColumn(9);
    auto miss = engine.run({other});
    EXPECT_FALSE(miss[0].fromCache);
    EXPECT_EQ(engine.cacheSize(), 2u);

    engine.clearCache();
    EXPECT_EQ(engine.cacheSize(), 0u);
}

TEST(Campaign, CacheCanBeDisabled)
{
    RunConfig cfg;
    cfg.iterations = 200;
    Job job = Job::fromConfig(sim::chip("Titan"), pl::mp(), cfg);
    EngineOptions opts;
    opts.cache = false;
    Engine engine(opts);
    auto batch = engine.run({job, job});
    EXPECT_FALSE(batch[0].fromCache);
    EXPECT_FALSE(batch[1].fromCache);
    EXPECT_EQ(engine.cacheHits(), 0u);
    EXPECT_EQ(engine.cacheSize(), 0u);
    // Still deterministic: both computed the same stream.
    EXPECT_EQ(batch[0].hist.counts(), batch[1].hist.counts());
}

TEST(Campaign, TableSinkShape)
{
    TableSink table("test", TableSink::byLabel(),
                    TableSink::byColumn());
    Engine engine;
    Campaign()
        .iterations(200)
        .test(pl::mp(), "mp")
        .test(pl::sb(), "sb")
        .overColumns(9, 12)
        .run(engine, {&table});
    std::string rendered = table.render().str();
    // Header: corner + the four columns; body: one row per test.
    EXPECT_NE(rendered.find("test"), std::string::npos);
    for (const char *col : {"9", "10", "11", "12"})
        EXPECT_NE(rendered.find(col), std::string::npos);
    EXPECT_NE(rendered.find("mp"), std::string::npos);
    EXPECT_NE(rendered.find("sb"), std::string::npos);
    // 1 header + 1 rule + 2 body rows.
    size_t lines = 0;
    for (char ch : rendered)
        lines += ch == '\n';
    EXPECT_EQ(lines, 4u);
}

TEST(Campaign, JsonSinkShape)
{
    JsonSink json;
    Engine engine;
    auto results = Campaign()
                       .iterations(200)
                       .test(pl::mp(), "mp")
                       .overColumns(15, 16)
                       .run(engine, {&json});
    ASSERT_EQ(json.size(), 2u);
    std::ostringstream os;
    json.writeTo(os);
    std::string doc = os.str();
    EXPECT_EQ(doc.front(), '[');
    for (const char *field :
         {"\"label\":\"mp\"", "\"chip\":\"Titan\"", "\"column\":15",
          "\"column\":16", "\"iterations\":200", "\"obs_per_100k\":",
          "\"counts\":{", "\"cached\":false"})
        EXPECT_NE(doc.find(field), std::string::npos) << field;
    // The JSON mirrors the returned results.
    EXPECT_NE(doc.find("\"observed\":" + std::to_string(
                           results[0].hist.observed())),
              std::string::npos);
}

TEST(Campaign, ProgressCallbackCountsComputedJobs)
{
    size_t calls = 0;
    size_t last_total = 0;
    Engine engine;
    Campaign()
        .iterations(100)
        .test(pl::mp(), "mp")
        .overColumns(1, 4)
        .run(engine, {},
             [&](size_t done, size_t total, const JobResult &) {
                 ++calls;
                 last_total = total;
                 EXPECT_LE(done, total);
             });
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(last_total, 4u);
}

TEST(Campaign, DefaultJobsFromEnv)
{
    setenv("GPULITMUS_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3);
    setenv("GPULITMUS_JOBS", "bogus", 1);
    EXPECT_GE(defaultJobs(), 1);
    unsetenv("GPULITMUS_JOBS");
    EXPECT_GE(defaultJobs(), 1);
}

} // namespace
} // namespace gpulitmus::harness
