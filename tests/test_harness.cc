/**
 * @file
 * Tests for the harness: reproducibility, histogram integrity,
 * iteration plumbing, and the incidence ordering the incantations
 * induce (Tab. 6's qualitative claims).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/runner.h"
#include "litmus/library.h"

namespace gpulitmus::harness {
namespace {

namespace pl = litmus::paperlib;

TEST(Runner, HistogramTotalsMatchIterations)
{
    RunConfig cfg;
    cfg.iterations = 500;
    litmus::Histogram h = run(sim::chip("Titan"), pl::mp(), cfg);
    EXPECT_EQ(h.total(), 500u);
    uint64_t sum = 0;
    for (const auto &[key, count] : h.counts())
        sum += count;
    EXPECT_EQ(sum, 500u);
}

TEST(Runner, ReproducibleWithSameSeed)
{
    RunConfig cfg;
    cfg.iterations = 2000;
    litmus::Histogram a = run(sim::chip("TesC"), pl::sb(), cfg);
    litmus::Histogram b = run(sim::chip("TesC"), pl::sb(), cfg);
    EXPECT_EQ(a.observed(), b.observed());
    EXPECT_EQ(a.counts(), b.counts());
}

TEST(Runner, DifferentSeedsDiffer)
{
    RunConfig a_cfg, b_cfg;
    a_cfg.iterations = b_cfg.iterations = 5000;
    b_cfg.seed = a_cfg.seed + 1;
    litmus::Histogram a = run(sim::chip("Titan"), pl::sb(), a_cfg);
    litmus::Histogram b = run(sim::chip("Titan"), pl::sb(), b_cfg);
    // Weak counts fluctuate between seeds (they are samples).
    EXPECT_NE(a.counts(), b.counts());
}

TEST(Runner, ObservePer100kNormalises)
{
    RunConfig cfg;
    cfg.iterations = 1000;
    // A test whose condition always holds: final x=1 after one store.
    litmus::Test t = litmus::TestBuilder("always")
                         .global("x", 0)
                         .thread("st.cg [x],1")
                         .intraCta()
                         .exists("x=1")
                         .build();
    EXPECT_EQ(observePer100k(sim::chip("Titan"), t, cfg), 100000u);
}

TEST(Runner, DefaultIterationsFromEnv)
{
    setenv("GPULITMUS_ITERS", "1234", 1);
    EXPECT_EQ(defaultIterations(), 1234u);
    setenv("GPULITMUS_ITERS", "bogus", 1);
    EXPECT_EQ(defaultIterations(), 100000u);
    unsetenv("GPULITMUS_ITERS");
    EXPECT_EQ(defaultIterations(), 100000u);
}

TEST(Runner, MpAllOutcomesAppear)
{
    RunConfig cfg;
    cfg.iterations = 20000;
    litmus::Histogram h = run(sim::chip("Titan"), pl::mp(), cfg);
    // All four r1/r2 combinations should be reachable under stress.
    EXPECT_EQ(h.counts().size(), 4u);
}

TEST(Incantations, StressIsRequiredOnNvidia)
{
    RunConfig with, without;
    with.iterations = without.iterations = 8000;
    with.inc = sim::Incantations::all();
    without.inc = sim::Incantations::all();
    without.inc.memoryStress = false;
    without.inc.bankConflicts = false;
    EXPECT_GT(run(sim::chip("Titan"), pl::sb(), with).observed(), 0u);
    EXPECT_EQ(run(sim::chip("Titan"), pl::sb(), without).observed(),
              0u);
}

TEST(Incantations, AmdWeakWithoutStress)
{
    RunConfig cfg;
    cfg.iterations = 8000;
    cfg.inc = sim::Incantations::none();
    EXPECT_GT(run(sim::chip("HD7970"), pl::lb(), cfg).observed(), 0u);
}

TEST(Incantations, SyncIncreasesInterCtaIncidence)
{
    RunConfig base, sync;
    base.iterations = sync.iterations = 30000;
    base.inc = sim::Incantations::fromColumn(9);  // stress only
    sync.inc = sim::Incantations::fromColumn(11); // stress + sync
    uint64_t without_sync =
        run(sim::chip("Titan"), pl::sb(), base).observed();
    uint64_t with_sync =
        run(sim::chip("Titan"), pl::sb(), sync).observed();
    EXPECT_GT(with_sync, without_sync);
}

TEST(Incantations, BankConflictsNeededForCoRRWithoutStress)
{
    RunConfig bank_rand, rand_only;
    bank_rand.iterations = rand_only.iterations = 20000;
    bank_rand.inc = sim::Incantations::fromColumn(6); // bank + rand
    rand_only.inc = sim::Incantations::fromColumn(2); // rand alone
    EXPECT_GT(
        run(sim::chip("Titan"), pl::coRR(), bank_rand).observed(),
        0u);
    EXPECT_EQ(
        run(sim::chip("Titan"), pl::coRR(), rand_only).observed(),
        0u);
}

TEST(Incantations, BankConflictsDampenInterCtaOnNvidia)
{
    RunConfig c12, c16;
    c12.iterations = c16.iterations = 40000;
    c12.inc = sim::Incantations::fromColumn(12);
    c16.inc = sim::Incantations::fromColumn(16);
    uint64_t without_bank =
        run(sim::chip("Titan"), pl::lb(), c12).observed();
    uint64_t with_bank =
        run(sim::chip("Titan"), pl::lb(), c16).observed();
    EXPECT_GT(without_bank, with_bank);
}

} // namespace
} // namespace gpulitmus::harness
