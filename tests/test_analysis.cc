/**
 * @file
 * The static analyzer's soundness gate (analysis/race.h + sc.h).
 *
 * The load-bearing claim is one-directional: when the analyzer says
 * *fully ordered* (no conflicting pair lies on a dangerous critical
 * cycle), the program can only produce sequentially consistent
 * outcomes, so the mc explorer's exact reachable set must equal the
 * SC enumeration — on the weakest chips, under the weakest
 * incantations. The explorer pre-pass (eval/backend.cc) substitutes
 * the SC enumeration for the full exploration on exactly this
 * verdict, so any divergence found here is a soundness bug, not a
 * test flake.
 *
 * The battery checks that claim differentially over all three
 * program sources:
 *  - the whole on-disk corpus,
 *  - every registry-scenario variant (7 scenarios x fenced 0/1),
 *  - >= 250 generator-produced cycles,
 * plus the verdict pins the paper-facing scenarios rely on (unfenced
 * spinlock / cas_spinlock / seqlock are proven-racy; their fenced=1
 * variants are fully ordered), the non-vacuity of the fully-ordered
 * class, the lint JSON schema, and the generator-steering contract.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/race.h"
#include "analysis/sc.h"
#include "eval/backend.h"
#include "gen/generator.h"
#include "litmus/parser.h"
#include "mc/explorer.h"
#include "scenario/registry.h"
#include "sim/chip.h"

#ifndef GPULITMUS_SOURCE_DIR
#define GPULITMUS_SOURCE_DIR "."
#endif

namespace gpulitmus {
namespace {

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    std::string dir =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests";
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.path().extension() == ".litmus")
            files.push_back(e.path().filename().string());
    }
    std::sort(files.begin(), files.end());
    EXPECT_GE(files.size(), 10u);
    return files;
}

litmus::Test
loadCorpus(const std::string &name)
{
    std::string path =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    auto test = litmus::parseTest(ss.str());
    EXPECT_TRUE(test.has_value()) << path;
    return *test;
}

std::vector<std::string>
variantSpecs()
{
    std::vector<std::string> specs;
    for (const auto &s : scenario::all()) {
        for (int fenced = 0; fenced <= 1; ++fenced)
            specs.push_back("scenario:" + s.name +
                            ",fenced=" + std::to_string(fenced));
    }
    EXPECT_EQ(specs.size(), 14u);
    return specs;
}

mc::ExploreResult
exploreTest(const litmus::Test &test, const char *chip, int column,
            mc::ExploreOptions opts)
{
    opts.machine.inc = sim::Incantations::fromColumn(column);
    return mc::Explorer(sim::chip(chip), test, opts).explore();
}

std::set<std::string>
keysOf(const std::map<std::string, uint64_t> &finals)
{
    std::set<std::string> keys;
    for (const auto &[key, weight] : finals)
        keys.insert(key);
    return keys;
}

/** The differential claim itself: for an analyzer-fully-ordered
 * program, a settled exploration reaches exactly the SC set; a
 * bounded one reaches a subset (everything it found is genuinely
 * reachable, hence SC). */
void
expectScEquivalent(const mc::ExploreResult &exact,
                   const analysis::ScResult &sc,
                   const std::string &label)
{
    std::set<std::string> mcKeys = keysOf(exact.finals);
    std::set<std::string> scKeys = keysOf(sc.finals);
    if (exact.complete || exact.fairComplete) {
        EXPECT_EQ(mcKeys, scKeys)
            << label << ": fully-ordered program explored to a "
            << "different reachable set than SC — analyzer unsound "
            << "or SC enumerator wrong";
        EXPECT_EQ(exact.satisfying, sc.satisfying) << label;
    } else {
        for (const auto &key : mcKeys)
            EXPECT_TRUE(scKeys.count(key))
                << label << ": bounded exploration reached non-SC "
                << "state '" << key << "' of a fully-ordered program";
    }
}

// ---------------------------------------------------------------------
// Verdict pins: the paper-facing classifications.
// ---------------------------------------------------------------------

TEST(AnalysisVerdicts, CorpusPins)
{
    analysis::Report mp = analysis::analyze(loadCorpus("mp.litmus"));
    EXPECT_TRUE(mp.anyProven());
    EXPECT_EQ(mp.pairsProven, 2);
    EXPECT_FALSE(mp.fullyOrdered);
    ASSERT_GE(mp.findings.size(), 1u);
    // Satellite contract: findings carry source positions (litmus
    // parser line tracking threaded through ptx::Instruction).
    EXPECT_GT(mp.findings[0].a.srcLine, 0);
    EXPECT_GT(mp.findings[0].b.srcLine, 0);

    analysis::Report fenced =
        analysis::analyze(loadCorpus("mp-membar.gl.litmus"));
    EXPECT_TRUE(fenced.fullyOrdered);
    EXPECT_EQ(fenced.racyPairs(), 0);
    EXPECT_FALSE(fenced.anyProven());

    // corr's two plain loads of one location: the machine may violate
    // read-read coherence (the Fig. 4 L1 behaviour), which no fence
    // placement between *other* accesses repairs.
    analysis::Report corr =
        analysis::analyze(loadCorpus("corr.litmus"));
    EXPECT_TRUE(corr.anyProven());
}

TEST(AnalysisVerdicts, ScenarioPins)
{
    // The acceptance triple: unfenced spinlock / cas_spinlock /
    // seqlock are proven racy (lint exits 2); their fenced=1 variants
    // are fully ordered, matching what exploration shows.
    for (const char *name :
         {"spinlock_dot_product", "cas_spinlock", "seqlock"}) {
        std::string error;
        auto unfenced = scenario::buildSpec(
            std::string("scenario:") + name + ",fenced=0", &error);
        ASSERT_TRUE(unfenced.has_value()) << error;
        analysis::Report rep = analysis::analyze(unfenced->test);
        EXPECT_TRUE(rep.anyProven()) << name << " fenced=0";
        EXPECT_FALSE(rep.fullyOrdered) << name << " fenced=0";

        auto fenced = scenario::buildSpec(
            std::string("scenario:") + name + ",fenced=1", &error);
        ASSERT_TRUE(fenced.has_value()) << error;
        analysis::Report frep = analysis::analyze(fenced->test);
        EXPECT_TRUE(frep.fullyOrdered) << name << " fenced=1";
        EXPECT_EQ(frep.racyPairs(), 0) << name << " fenced=1";
    }
}

TEST(AnalysisVerdicts, JsonSchemaStable)
{
    analysis::Report rep = analysis::analyze(loadCorpus("mp.litmus"));
    std::string json = rep.json();
    // The schema tag and the fields the CI lint-smoke job greps for.
    EXPECT_NE(json.find("\"schema\":\"gpulitmus-lint-1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"fully_ordered\":"), std::string::npos);
    EXPECT_NE(json.find("\"findings\":"), std::string::npos);
    EXPECT_NE(json.find("\"proven-racy\""), std::string::npos);
    EXPECT_NE(json.find("\"line\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// The SC enumerator on its own.
// ---------------------------------------------------------------------

TEST(ScEnumerator, MpScSetIsThreeStatesNoneSatisfying)
{
    litmus::Test test = loadCorpus("mp.litmus");
    auto sc = analysis::enumerateSc(test);
    ASSERT_TRUE(sc.has_value());
    EXPECT_TRUE(sc->complete);
    // Under SC, message passing admits 0/0, 0/1 and 1/1 but never
    // the relaxed 1/0 the exists-clause asks for.
    EXPECT_EQ(sc->finals.size(), 3u);
    EXPECT_TRUE(sc->satisfying.empty());
}

TEST(ScEnumerator, StateBudgetDegradesToNullopt)
{
    litmus::Test test = loadCorpus("mp.litmus");
    analysis::ScOptions opts;
    opts.maxStates = 2;
    EXPECT_FALSE(analysis::enumerateSc(test, opts).has_value());
}

// ---------------------------------------------------------------------
// The differential gate, over all three program sources.
// ---------------------------------------------------------------------

TEST(DifferentialGate, Corpus)
{
    int fullyOrdered = 0;
    for (const std::string &file : corpusFiles()) {
        litmus::Test test = loadCorpus(file);
        analysis::Report rep = analysis::analyze(test);
        if (!rep.fullyOrdered)
            continue;
        ++fullyOrdered;
        auto sc = analysis::enumerateSc(test);
        ASSERT_TRUE(sc.has_value()) << file;
        mc::ExploreResult exact =
            exploreTest(test, "Titan", 16, {});
        ASSERT_TRUE(exact.complete) << file;
        expectScEquivalent(exact, *sc, file);
    }
    // Non-vacuity: the fully-ordered class is inhabited (mp-deps,
    // mp-membar.gl), so the gate actually gated something.
    EXPECT_GE(fullyOrdered, 2);
}

TEST(DifferentialGate, ScenarioVariants)
{
    int fullyOrdered = 0;
    for (const std::string &spec : variantSpecs()) {
        std::string error;
        auto built = scenario::buildSpec(spec, &error);
        ASSERT_TRUE(built.has_value()) << error;
        analysis::Report rep = analysis::analyze(built->test);
        if (!rep.fullyOrdered)
            continue;
        ++fullyOrdered;
        analysis::ScOptions scOpts;
        scOpts.maxStates = 1u << 22;
        auto sc = analysis::enumerateSc(built->test, scOpts);
        ASSERT_TRUE(sc.has_value()) << spec;
        mc::ExploreOptions opts;
        opts.machine.maxMicroSteps = built->maxMicroSteps;
        opts.maxReplays = 1u << 14;
        opts.shards = 4;
        mc::ExploreResult exact =
            exploreTest(built->test, "TesC", 16, opts);
        expectScEquivalent(exact, *sc, spec);
    }
    // At least the three fenced acceptance scenarios land here.
    EXPECT_GE(fullyOrdered, 3);
}

TEST(DifferentialGate, GeneratedPrograms)
{
    gen::GeneratorOptions gopts;
    gopts.maxEdges = 4;
    gopts.maxTests = 250;
    auto tests = gen::generate(gen::defaultPool(), gopts);
    ASSERT_EQ(tests.size(), 250u);
    int fullyOrdered = 0;
    for (const auto &g : tests) {
        analysis::Report rep = analysis::analyze(g.test);
        if (!rep.fullyOrdered)
            continue;
        ++fullyOrdered;
        auto sc = analysis::enumerateSc(g.test);
        ASSERT_TRUE(sc.has_value()) << g.cycleName;
        mc::ExploreResult exact =
            exploreTest(g.test, "Titan", 16, {});
        ASSERT_TRUE(exact.complete) << g.cycleName;
        expectScEquivalent(exact, *sc, g.cycleName);
    }
    EXPECT_GE(fullyOrdered, 10);
}

// ---------------------------------------------------------------------
// The explorer pre-pass in the mc backend.
// ---------------------------------------------------------------------

TEST(Prepass, BackendAnswersFullyOrderedFromScEnumeration)
{
    // mp-deps is fully ordered (membar.gl on the writer, the Fig. 13
    // artificial dependency on the reader), so the pre-pass must
    // answer it without a single explorer replay — and the answer
    // must match the full exploration semantically.
    harness::Job job;
    job.backend = harness::kMcBackend;
    job.chip = sim::chip("Titan");
    job.test = loadCorpus("mp-deps.litmus");
    job.inc = sim::Incantations::fromColumn(16);
    job.shards = 1;

    eval::McBackend backend;
    ::unsetenv("GPULITMUS_MC_NO_PREPASS");
    eval::EvalResult pre = backend.evaluate(job);
    ASSERT_TRUE(pre.hasExact());
    EXPECT_EQ(pre.exact->stats.replays, 0u)
        << "pre-pass did not fire on a fully-ordered program";
    EXPECT_TRUE(pre.exact->complete);

    ::setenv("GPULITMUS_MC_NO_PREPASS", "1", 1);
    eval::EvalResult full = backend.evaluate(job);
    ::unsetenv("GPULITMUS_MC_NO_PREPASS");
    ASSERT_TRUE(full.hasExact());
    EXPECT_GT(full.exact->stats.replays, 0u)
        << "kill-switch did not force the full exploration";
    ASSERT_TRUE(full.exact->complete);

    // The semantic contract: reachable set, satisfying set and
    // verdict identical; only search statistics and path weights may
    // differ (which is why the knob is excluded from cache keys).
    EXPECT_EQ(keysOf(pre.exact->finals), keysOf(full.exact->finals));
    EXPECT_EQ(pre.exact->satisfying, full.exact->satisfying);
    EXPECT_EQ(pre.exact->verdict(job.test),
              full.exact->verdict(job.test));
}

TEST(Prepass, RacyProgramsStillExplore)
{
    harness::Job job;
    job.backend = harness::kMcBackend;
    job.chip = sim::chip("Titan");
    job.test = loadCorpus("mp.litmus");
    job.inc = sim::Incantations::fromColumn(16);
    job.shards = 1;
    eval::McBackend backend;
    eval::EvalResult r = backend.evaluate(job);
    ASSERT_TRUE(r.hasExact());
    // mp is proven racy: the pre-pass must stand aside and the weak
    // exploration must find the relaxed outcome.
    EXPECT_GT(r.exact->stats.replays, 0u);
    EXPECT_FALSE(r.exact->satisfying.empty());
}

// ---------------------------------------------------------------------
// Generator steering.
// ---------------------------------------------------------------------

TEST(Steering, SortsByPredictedRacyPairsPreservingTheSet)
{
    gen::GeneratorOptions plain;
    plain.maxEdges = 4;
    plain.maxTests = 60;
    auto base = gen::generate(gen::defaultPool(), plain);

    gen::GeneratorOptions steered = plain;
    steered.steer = true;
    auto ranked = gen::generate(gen::defaultPool(), steered);

    ASSERT_EQ(base.size(), ranked.size());
    std::set<std::string> baseNames, rankedNames;
    for (const auto &g : base) {
        EXPECT_EQ(g.predictedRacyPairs, -1); // unscored by default
        baseNames.insert(g.cycleName);
    }
    for (const auto &g : ranked) {
        EXPECT_GE(g.predictedRacyPairs, 0);
        rankedNames.insert(g.cycleName);
    }
    // Steering reorders; it never adds, drops or rewrites tests.
    EXPECT_EQ(baseNames, rankedNames);
    for (size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].predictedRacyPairs,
                  ranked[i].predictedRacyPairs)
            << "steered order not descending at " << i;
    // The steering is useful: the head of the ranked list predicts
    // strictly more races than the tail.
    EXPECT_GT(ranked.front().predictedRacyPairs,
              ranked.back().predictedRacyPairs);
}

} // namespace
} // namespace gpulitmus
