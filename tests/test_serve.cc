/**
 * @file
 * Tests for the serve subsystem: the durable content-addressed result
 * store (roundtrip, crash recovery, ABI staleness, eviction), the
 * wire protocol and its CLI-mirroring planner, and the daemon itself
 * (concurrent clients over a Unix socket, bit-identity with the batch
 * engine, journal replay, graceful shutdown).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <cctype>
#include <cstring>
#include <thread>

#include "common/version.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/store.h"

namespace gpulitmus::serve {
namespace {

namespace fs = std::filesystem;
namespace pl = litmus::paperlib;

/** Fresh store directory per test, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("gls_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

harness::Job
simJob(const litmus::Test &test, uint64_t iterations = 500,
       uint64_t seed = 0x6c69)
{
    harness::RunConfig cfg;
    cfg.iterations = iterations;
    cfg.seed = seed;
    harness::Job job =
        harness::Job::fromConfig(sim::chip("Titan"), test, cfg);
    job.label = test.name;
    return job;
}

/** evalCellJson minus the provenance and timing fields (from_store,
 * cached, millis) — everything that may legitimately differ between a
 * computed result and the same result replayed from cache or disk. */
std::string
stripProvenance(std::string json)
{
    for (const char *marker :
         {",\"from_store\":true", ",\"from_store\":false",
          ",\"cached\":true", ",\"cached\":false"}) {
        auto at = json.find(marker);
        if (at != std::string::npos)
            json.erase(at, std::strlen(marker));
    }
    auto at = json.find(",\"millis\":");
    if (at != std::string::npos) {
        auto end = at + std::strlen(",\"millis\":");
        while (end < json.size() &&
               (std::isdigit(static_cast<unsigned char>(json[end])) ||
                json[end] == '.' || json[end] == '-'))
            ++end;
        json.erase(at, end - at);
    }
    return json;
}

// ---- store: digests -------------------------------------------------

TEST(Store, DigestIsDeterministicAndSeparatesAxes)
{
    harness::Job a = simJob(pl::mp());
    EXPECT_EQ(ResultStore::digestFor(a), ResultStore::digestFor(a));

    // Every key axis moves the digest...
    harness::Job other_seed = a;
    other_seed.seed = 99;
    EXPECT_NE(ResultStore::digestFor(a),
              ResultStore::digestFor(other_seed));
    harness::Job other_col = a;
    other_col.inc = sim::Incantations::fromColumn(3);
    EXPECT_NE(ResultStore::digestFor(a),
              ResultStore::digestFor(other_col));
    harness::Job other_test = simJob(pl::sb());
    EXPECT_NE(ResultStore::digestFor(a),
              ResultStore::digestFor(other_test));
    harness::Job other_backend = a;
    other_backend.backend = "ptx";
    EXPECT_NE(ResultStore::digestFor(a),
              ResultStore::digestFor(other_backend));

    // ...except the seed on mc jobs (the search is deterministic) and
    // the non-key label.
    harness::Job mc_a = a, mc_b = other_seed;
    mc_a.backend = harness::kMcBackend;
    mc_b.backend = harness::kMcBackend;
    EXPECT_EQ(ResultStore::digestFor(mc_a),
              ResultStore::digestFor(mc_b));
    harness::Job relabeled = a;
    relabeled.label = "other-label";
    EXPECT_EQ(ResultStore::digestFor(a),
              ResultStore::digestFor(relabeled));
}

// ---- store: roundtrip and durability --------------------------------

TEST(Store, SimResultRoundTripsAcrossReopen)
{
    TempDir dir("roundtrip");
    harness::Job job = simJob(pl::mp());
    harness::JobResult computed = harness::runJob(job);

    {
        auto store = ResultStore::open(dir.str());
        ASSERT_NE(store, nullptr);
        EXPECT_FALSE(store->fetchSim(job).has_value());
        store->putSim(job, computed);
        auto hit = store->fetchSim(job);
        ASSERT_TRUE(hit.has_value());
        EXPECT_TRUE(hit->fromStore);
        EXPECT_EQ(hit->hist.counts(), computed.hist.counts());
        ASSERT_TRUE(store->flush());
    }

    // A second open (a new process, as far as the log is concerned)
    // replays the record and serves it bit-identically.
    auto store = ResultStore::open(dir.str());
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->stats().loaded, 1u);
    auto hit = store->fetchSim(job);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->hist.counts(), computed.hist.counts());
    EXPECT_EQ(hit->hist.observed(), computed.hist.observed());
    EXPECT_EQ(hit->hist.total(), computed.hist.total());
    EXPECT_EQ(hit->observedPer100k, computed.observedPer100k);
}

TEST(Store, EvalResultsRoundTripVerdictAndExact)
{
    TempDir dir("evalround");
    harness::Job model_job = simJob(pl::mp());
    model_job.backend = "ptx";
    harness::Job mc_job = simJob(pl::sb());
    mc_job.backend = harness::kMcBackend;
    mc_job.iterations = 1 << 18;

    eval::Engine engine;
    auto computed = engine.run({model_job, mc_job});
    ASSERT_EQ(computed.size(), 2u);
    ASSERT_TRUE(computed[0].hasVerdict());
    ASSERT_TRUE(computed[1].hasExact());

    {
        auto store = ResultStore::open(dir.str());
        ASSERT_NE(store, nullptr);
        store->putEval(model_job, computed[0]);
        store->putEval(mc_job, computed[1]);
        ASSERT_TRUE(store->flush());
    }

    auto store = ResultStore::open(dir.str());
    ASSERT_NE(store, nullptr);
    auto verdict_hit = store->fetchEval(model_job);
    ASSERT_TRUE(verdict_hit.has_value());
    EXPECT_TRUE(verdict_hit->fromStore);
    ASSERT_TRUE(verdict_hit->hasVerdict());
    const model::Verdict &got = *verdict_hit->verdict;
    const model::Verdict &want = *computed[0].verdict;
    EXPECT_EQ(got.modelName, want.modelName);
    EXPECT_EQ(got.numCandidates, want.numCandidates);
    EXPECT_EQ(got.numAllowed, want.numAllowed);
    EXPECT_EQ(got.allowedKeys, want.allowedKeys);
    EXPECT_EQ(got.forbiddenKeys, want.forbiddenKeys);
    EXPECT_EQ(got.verdict, want.verdict);
    EXPECT_EQ(got.conditionSatisfiable, want.conditionSatisfiable);

    auto exact_hit = store->fetchEval(mc_job);
    ASSERT_TRUE(exact_hit.has_value());
    ASSERT_TRUE(exact_hit->hasExact());
    EXPECT_EQ(exact_hit->exact->finals, computed[1].exact->finals);
    EXPECT_EQ(exact_hit->exact->satisfying,
              computed[1].exact->satisfying);
    EXPECT_EQ(exact_hit->exact->complete,
              computed[1].exact->complete);
    EXPECT_EQ(exact_hit->exact->stats.replays,
              computed[1].exact->stats.replays);
}

TEST(Store, AbiMismatchResetsTheLog)
{
    TempDir dir("abireset");
    harness::Job job = simJob(pl::mp());
    {
        auto store = ResultStore::open(dir.str());
        ASSERT_NE(store, nullptr);
        store->putSim(job, harness::runJob(job));
        ASSERT_TRUE(store->flush());
    }

    // Forge a header from another ABI generation: flip one byte of
    // the embedded stamp. The reopened store must serve nothing.
    std::string log = dir.str() + "/results.log";
    {
        std::fstream f(log, std::ios::in | std::ios::out |
                                std::ios::binary);
        f.seekp(12); // first byte of the ABI string
        f.put('X');
    }
    auto store = ResultStore::open(dir.str());
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->stats().resetStale);
    EXPECT_EQ(store->size(), 0u);
    EXPECT_FALSE(store->fetchSim(job).has_value());
}

TEST(Store, TornTailTruncatesToLastIntactRecord)
{
    TempDir dir("torntail");
    harness::Job a = simJob(pl::mp());
    harness::Job b = simJob(pl::sb());
    {
        auto store = ResultStore::open(dir.str());
        ASSERT_NE(store, nullptr);
        store->putSim(a, harness::runJob(a));
        store->putSim(b, harness::runJob(b));
        ASSERT_TRUE(store->flush());
    }

    // Crash mid-append: chop bytes off the tail, leaving record b
    // torn.
    std::string log = dir.str() + "/results.log";
    auto size = fs::file_size(log);
    fs::resize_file(log, size - 5);

    auto store = ResultStore::open(dir.str());
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->stats().loaded, 1u);
    EXPECT_GT(store->stats().truncatedBytes, 0u);
    EXPECT_TRUE(store->fetchSim(a).has_value());
    EXPECT_FALSE(store->fetchSim(b).has_value());

    // The truncation repaired the log: appends keep working and the
    // next open sees a clean file.
    store->putSim(b, harness::runJob(b));
    ASSERT_TRUE(store->flush());
    store.reset();
    auto reopened = ResultStore::open(dir.str());
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->stats().loaded, 2u);
    EXPECT_EQ(reopened->stats().truncatedBytes, 0u);
}

TEST(Store, BitFlipInvalidatesFromTheFlippedRecordOn)
{
    TempDir dir("bitflip");
    harness::Job a = simJob(pl::mp());
    harness::Job b = simJob(pl::sb());
    uint64_t first_record_end = 0;
    {
        auto store = ResultStore::open(dir.str());
        ASSERT_NE(store, nullptr);
        store->putSim(a, harness::runJob(a));
        ASSERT_TRUE(store->flush());
        first_record_end = fs::file_size(dir.str() + "/results.log");
        store->putSim(b, harness::runJob(b));
        ASSERT_TRUE(store->flush());
    }

    // Flip one payload byte inside the second record. The checksum
    // catches it; record one survives, the rest is cut.
    std::string log = dir.str() + "/results.log";
    {
        std::fstream f(log, std::ios::in | std::ios::out |
                                std::ios::binary);
        f.seekg(static_cast<std::streamoff>(first_record_end) + 40);
        char byte = 0;
        f.get(byte);
        f.seekp(static_cast<std::streamoff>(first_record_end) + 40);
        f.put(static_cast<char>(byte ^ 0x40));
    }

    auto store = ResultStore::open(dir.str());
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->stats().loaded, 1u);
    EXPECT_GT(store->stats().truncatedBytes, 0u);
    EXPECT_TRUE(store->fetchSim(a).has_value());
    EXPECT_FALSE(store->fetchSim(b).has_value());
}

TEST(Store, CompactionEvictsOldestWhenOverCap)
{
    TempDir dir("compact");
    StoreOptions opts;
    opts.maxBytes = 2048;
    opts.syncOnFlush = false;
    auto store = ResultStore::open(dir.str(), opts);
    ASSERT_NE(store, nullptr);

    // Distinct digests via the seed axis; enough records to overflow
    // the cap several times.
    harness::JobResult computed = harness::runJob(simJob(pl::mp()));
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        harness::Job job = simJob(pl::mp(), 500, seed);
        store->putSim(job, computed);
    }
    EXPECT_GT(store->stats().evicted, 0u);
    EXPECT_LT(store->size(), 40u);
    // Newest record survives; the oldest was evicted.
    EXPECT_TRUE(store->fetchSim(simJob(pl::mp(), 500, 40)));
    EXPECT_FALSE(store->fetchSim(simJob(pl::mp(), 500, 1)));

    // The compacted log is valid on reopen.
    size_t live = store->size();
    ASSERT_TRUE(store->flush());
    store.reset();
    auto reopened = ResultStore::open(dir.str(), opts);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->size(), live);
    EXPECT_EQ(reopened->stats().truncatedBytes, 0u);
}

// ---- store behind the engines ---------------------------------------

TEST(Store, WarmEngineRunIsBitIdenticalToCold)
{
    TempDir dir("warmrun");
    std::vector<harness::Job> jobs;
    const litmus::Test tests[] = {pl::mp(), pl::lb()};
    for (const auto &test : tests) {
        harness::Job sim = simJob(test);
        harness::Job model = sim;
        model.backend = "ptx";
        jobs.push_back(sim);
        jobs.push_back(model);
    }

    eval::Engine plain;
    auto baseline = plain.run(jobs);

    StoreOptions sopts;
    sopts.syncOnFlush = false;
    {
        auto store = ResultStore::open(dir.str(), sopts);
        ASSERT_NE(store, nullptr);
        eval::EngineOptions eopts;
        eopts.store = store.get();
        eval::Engine cold(eopts);
        auto cold_results = cold.run(jobs);
        for (const auto &r : cold_results)
            EXPECT_FALSE(r.fromStore);
        ASSERT_TRUE(store->flush());
    }

    // Fresh store handle (= daemon restart): every cell must come
    // from disk, bit-identical to the plain engine.
    auto store = ResultStore::open(dir.str(), sopts);
    ASSERT_NE(store, nullptr);
    eval::EngineOptions eopts;
    eopts.store = store.get();
    eval::Engine warm(eopts);
    auto warm_results = warm.run(jobs);
    ASSERT_EQ(warm_results.size(), baseline.size());
    uint64_t from_store = 0;
    for (size_t i = 0; i < warm_results.size(); ++i) {
        from_store += warm_results[i].fromStore ? 1 : 0;
        EXPECT_EQ(stripProvenance(eval::evalCellJson(warm_results[i])),
                  stripProvenance(eval::evalCellJson(baseline[i])));
    }
    EXPECT_EQ(from_store, warm_results.size());
    EXPECT_EQ(store->stats().misses, 0u);
}

TEST(Store, HarnessEngineUsesTheStore)
{
    TempDir dir("simstore");
    harness::Job job = simJob(pl::mp());
    litmus::Histogram direct = harness::runJob(job).hist;

    StoreOptions sopts;
    sopts.syncOnFlush = false;
    auto store = ResultStore::open(dir.str(), sopts);
    ASSERT_NE(store, nullptr);

    harness::EngineOptions eopts;
    eopts.store = store.get();
    {
        harness::Engine engine(eopts);
        auto cold = engine.run({job});
        ASSERT_EQ(cold.size(), 1u);
        EXPECT_FALSE(cold[0].fromStore);
    }
    {
        // A fresh harness engine (empty L1) hits the L2 store.
        harness::Engine engine(eopts);
        auto warm = engine.run({job});
        ASSERT_EQ(warm.size(), 1u);
        EXPECT_TRUE(warm[0].fromStore);
        EXPECT_EQ(warm[0].hist.counts(), direct.counts());
    }
}

// ---- protocol -------------------------------------------------------

TEST(Protocol, ParseRejectsMalformedRequests)
{
    std::string error;
    EXPECT_FALSE(parseRequest("not json", &error).has_value());
    EXPECT_FALSE(parseRequest("[1,2]", &error).has_value());
    EXPECT_FALSE(parseRequest("{}", &error).has_value());
    EXPECT_FALSE(
        parseRequest("{\"cmd\":\"frobnicate\"}", &error).has_value());
    EXPECT_NE(error.find("frobnicate"), std::string::npos);
    EXPECT_FALSE(
        parseRequest("{\"cmd\":\"sweep\",\"column\":99}", &error)
            .has_value());
    EXPECT_FALSE(
        parseRequest("{\"cmd\":\"sweep\",\"tests\":[42]}", &error)
            .has_value());
}

TEST(Protocol, RenderParseRoundTrip)
{
    Request req;
    req.cmd = "validate";
    req.id = "r7";
    req.tests.push_back({"mp", "", ""});
    req.tests.push_back({"", "", "scenario:spinlock_dot_product"});
    req.chips = {"Titan", "GTX5"};
    req.models = {"ptx", "rmo"};
    req.column = 9;
    req.iterations = 1234;
    req.seed = 42;
    req.budget = 5000;
    req.exact = true;

    std::string error;
    auto parsed = parseRequest(renderRequest(req), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->cmd, req.cmd);
    EXPECT_EQ(parsed->id, req.id);
    ASSERT_EQ(parsed->tests.size(), 2u);
    EXPECT_EQ(parsed->tests[0].name, "mp");
    EXPECT_EQ(parsed->tests[1].spec,
              "scenario:spinlock_dot_product");
    EXPECT_EQ(parsed->chips, req.chips);
    EXPECT_EQ(parsed->models, req.models);
    EXPECT_EQ(parsed->column, 9);
    EXPECT_EQ(parsed->iterations, 1234u);
    EXPECT_EQ(parsed->seed, 42u);
    EXPECT_EQ(parsed->budget, 5000u);
    EXPECT_TRUE(parsed->exact);
}

TEST(Protocol, PlannerMirrorsCliDefaultsAndSurvivesBadInput)
{
    // validate with no chips: the Nvidia result chips, one sim + one
    // model job per chip.
    Request req;
    req.cmd = "validate";
    req.tests.push_back({"mp", "", ""});
    req.iterations = 500;
    Plan plan;
    std::string error;
    ASSERT_TRUE(planJobs(req, &plan, &error)) << error;
    size_t nvidia = 0;
    for (const auto &c : sim::resultChips())
        nvidia += c.isNvidia() ? 1 : 0;
    EXPECT_EQ(plan.jobs.size(), 2 * nvidia);

    // Unknown chip/test/model: an error string, never a dead daemon.
    Request bad = req;
    bad.chips = {"NoSuchChip"};
    Plan ignored;
    EXPECT_FALSE(planJobs(bad, &ignored, &error));
    EXPECT_NE(error.find("NoSuchChip"), std::string::npos);
    bad = req;
    bad.tests = {{"no_such_test", "", ""}};
    EXPECT_FALSE(planJobs(bad, &ignored, &error));
    EXPECT_NE(error.find("no_such_test"), std::string::npos);
    bad = req;
    bad.models = {"no_such_model"};
    EXPECT_FALSE(planJobs(bad, &ignored, &error));

    // "all" expands the chip registry on explore.
    Request exp;
    exp.cmd = "explore";
    exp.tests.push_back({"mp", "", ""});
    exp.chips = {"all"};
    exp.models = {"none"};
    exp.budget = 1 << 16;
    Plan exp_plan;
    ASSERT_TRUE(planJobs(exp, &exp_plan, &error)) << error;
    EXPECT_EQ(exp_plan.jobs.size(), sim::allChips().size());
}

// ---- daemon ---------------------------------------------------------

/** A live daemon on a Unix socket (short path: sockaddr_un caps at
 * ~108 bytes), torn down on destruction. */
struct TestServer
{
    TempDir store_dir;
    std::string socket;
    std::unique_ptr<Server> server;
    std::thread runner;

    explicit TestServer(const std::string &tag)
        : store_dir("srv_" + tag)
    {
        socket = "/tmp/gls_" + tag + "_" +
                 std::to_string(::getpid()) + ".sock";
        ServerOptions opts;
        opts.socketPath = socket;
        opts.storeDir = store_dir.str();
        opts.threads = 2;
        std::string error;
        server = Server::create(opts, &error);
        if (server)
            runner = std::thread([this]() { server->run(); });
    }

    ~TestServer()
    {
        if (server) {
            server->shutdown();
            runner.join();
        }
    }
};

/** Submit and collect the full event stream. */
struct Collected
{
    int exit = -1;
    std::vector<std::string> kinds;
    std::vector<std::string> resultCells; ///< "cell" objects, raw
    int64_t storeResults = -1;
    std::string error;
};

Collected
submitAndCollect(const std::string &socket, const Request &req)
{
    Collected out;
    auto client = Client::connectUnix(socket, &out.error);
    if (!client)
        return out;
    out.exit = client->submit(
        req,
        [&out](const json::Value &event, const std::string &line) {
            std::string kind = event.getString("event");
            out.kinds.push_back(kind);
            if (kind == "result") {
                auto cell = line.find("\"cell\":");
                out.resultCells.push_back(
                    line.substr(cell + 7,
                                line.size() - cell - 8));
            }
            if (kind == "summary")
                out.storeResults =
                    event.getInt("store_results", -1);
        },
        &out.error);
    return out;
}

TEST(Serve, HandshakeCarriesTheAbiStamp)
{
    TestServer ts("hello");
    ASSERT_NE(ts.server, nullptr);
    std::string error;
    auto client = Client::connectUnix(ts.socket, &error);
    ASSERT_NE(client, nullptr) << error;
    std::string line;
    ASSERT_TRUE(client->readLine(&line));
    auto hello = json::parse(line);
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->getString("event"), "hello");
    EXPECT_EQ(hello->getString("abi"), gpulitmus::kAbiVersionString);
}

TEST(Serve, UnknownCommandYieldsErrorEventNotDisconnect)
{
    TestServer ts("badcmd");
    ASSERT_NE(ts.server, nullptr);
    std::string error;
    auto client = Client::connectUnix(ts.socket, &error);
    ASSERT_NE(client, nullptr) << error;
    std::string line;
    ASSERT_TRUE(client->readLine(&line)); // hello
    ASSERT_TRUE(client->sendLine("{\"cmd\":\"frobnicate\"}"));
    ASSERT_TRUE(client->readLine(&line));
    auto event = json::parse(line);
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->getString("event"), "error");

    // The connection survives: a valid request still works.
    Request req;
    req.cmd = "list";
    req.id = "after-error";
    ASSERT_TRUE(client->sendLine(renderRequest(req)));
    ASSERT_TRUE(client->readLine(&line));
    auto list = json::parse(line);
    ASSERT_TRUE(list.has_value());
    EXPECT_EQ(list->getString("event"), "list");
    EXPECT_EQ(list->getString("abi"), gpulitmus::kAbiVersionString);
}

TEST(Serve, ValidateMatchesBatchEngineAndWarmsTheStore)
{
    TestServer ts("warm");
    ASSERT_NE(ts.server, nullptr);

    Request req;
    req.cmd = "validate";
    req.id = "v1";
    req.tests.push_back({"mp", "", ""});
    req.chips = {"Titan"};
    req.iterations = 800;

    // The batch-side truth: the same plan through a plain engine.
    Plan plan;
    std::string error;
    ASSERT_TRUE(planJobs(req, &plan, &error)) << error;
    eval::Engine plain;
    auto baseline = plain.run(plan.jobs);

    Collected cold = submitAndCollect(ts.socket, req);
    EXPECT_EQ(cold.exit, 0) << cold.error;
    EXPECT_EQ(cold.storeResults, 0);
    ASSERT_EQ(cold.resultCells.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i)
        EXPECT_EQ(stripProvenance(cold.resultCells[i]),
                  stripProvenance(eval::evalCellJson(baseline[i])));

    // Second submission: answered from the store (the engine L1 also
    // hits, but the summary counts fromStore propagation), still
    // bit-identical.
    Collected warm = submitAndCollect(ts.socket, req);
    EXPECT_EQ(warm.exit, 0) << warm.error;
    ASSERT_EQ(warm.resultCells.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i)
        EXPECT_EQ(stripProvenance(warm.resultCells[i]),
                  stripProvenance(cold.resultCells[i]));
}

TEST(Serve, ConcurrentClientsGetIdenticalDeterministicAnswers)
{
    TestServer ts("conc");
    ASSERT_NE(ts.server, nullptr);

    Request req;
    req.cmd = "validate";
    req.id = "c";
    req.tests.push_back({"mp", "", ""});
    req.tests.push_back({"lb", "", ""});
    req.chips = {"Titan", "GTX6"};
    req.iterations = 600;

    constexpr int kClients = 4;
    std::vector<Collected> results(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i]() {
            Request mine = req;
            mine.id = "c" + std::to_string(i);
            results[i] = submitAndCollect(ts.socket, mine);
        });
    }
    for (auto &t : threads)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        EXPECT_EQ(results[i].exit, 0) << results[i].error;
        ASSERT_EQ(results[i].resultCells.size(),
                  results[0].resultCells.size());
        for (size_t j = 0; j < results[0].resultCells.size(); ++j)
            EXPECT_EQ(stripProvenance(results[i].resultCells[j]),
                      stripProvenance(results[0].resultCells[j]));
    }
}

TEST(Serve, ScenarioExploreDetectsRacyOutcome)
{
    TestServer ts("scen");
    ASSERT_NE(ts.server, nullptr);

    // The unfenced spinlock scenario reaches its forbidden result
    // (the PR-5 scenario API's headline): the daemon must mirror the
    // batch CLI's exit 2.
    Request req;
    req.cmd = "scenario";
    req.id = "s1";
    req.tests.push_back(
        {"", "", "scenario:spinlock_dot_product,fenced=0"});
    req.chips = {"Titan"};
    req.models = {"none"};
    req.budget = 1 << 18;

    Collected got = submitAndCollect(ts.socket, req);
    EXPECT_EQ(got.exit, 2) << got.error;
}

TEST(Serve, JournalReplayCompletesInterruptedRequests)
{
    TempDir store_dir("journal");
    // A journal entry left by a daemon killed mid-request.
    Request req;
    req.cmd = "validate";
    req.id = "crashed";
    req.tests.push_back({"mp", "", ""});
    req.chips = {"Titan"};
    req.iterations = 500;
    fs::create_directories(store_dir.path / "pending");
    {
        std::ofstream out(store_dir.path / "pending" / "3.req");
        out << renderRequest(req) << "\n";
    }

    ServerOptions opts;
    opts.socketPath = "/tmp/gls_jr_" +
                      std::to_string(::getpid()) + ".sock";
    opts.storeDir = store_dir.str();
    opts.threads = 2;
    std::string error;
    auto server = Server::create(opts, &error);
    ASSERT_NE(server, nullptr) << error;

    // create() replays before serving: the request's cells are in the
    // store and the journal entry is gone.
    EXPECT_EQ(server->stats().replayedRequests, 1u);
    EXPECT_GT(server->store()->size(), 0u);
    EXPECT_TRUE(
        fs::is_empty(store_dir.path / "pending"));
    harness::Job job = simJob(pl::mp(), 500);
    EXPECT_TRUE(server->store()->fetchSim(job).has_value());
}

} // namespace
} // namespace gpulitmus::serve
