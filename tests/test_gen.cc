/**
 * @file
 * Tests for the diy-style generator: edge naming, cycle synthesis of
 * the classic idioms, well-formedness of everything generated, and
 * model verdicts on generated fence variants.
 */

#include <gtest/gtest.h>

#include "axiom/enumerate.h"
#include "cat/models.h"
#include "gen/generator.h"
#include "litmus/parser.h"
#include "model/checker.h"

namespace gpulitmus::gen {
namespace {

Edge
rfe(ScopeAnn s = ScopeAnn::InterCta)
{
    Edge e;
    e.type = Edge::Type::Rfe;
    e.from = Dir::W;
    e.to = Dir::R;
    e.sameLoc = true;
    e.scope = s;
    return e;
}

Edge
fre(ScopeAnn s = ScopeAnn::InterCta)
{
    Edge e;
    e.type = Edge::Type::Fre;
    e.from = Dir::R;
    e.to = Dir::W;
    e.sameLoc = true;
    e.scope = s;
    return e;
}

Edge
po(Dir f, Dir t, bool same = false)
{
    Edge e;
    e.type = Edge::Type::Po;
    e.from = f;
    e.to = t;
    e.sameLoc = same;
    return e;
}

Edge
fence(ptx::Scope s, Dir f, Dir t)
{
    Edge e;
    e.type = Edge::Type::Fence;
    e.from = f;
    e.to = t;
    e.sameLoc = false;
    e.fenceScope = s;
    return e;
}

Edge
dp(DepKind k, Dir t)
{
    Edge e;
    e.type = Edge::Type::Dp;
    e.from = Dir::R;
    e.to = t;
    e.sameLoc = false;
    e.dep = k;
    return e;
}

TEST(Edges, Names)
{
    EXPECT_EQ(rfe().name(), "Rfe-dev");
    EXPECT_EQ(rfe(ScopeAnn::IntraCta).name(), "Rfe-cta");
    EXPECT_EQ(po(Dir::W, Dir::R).name(), "PodWR");
    EXPECT_EQ(po(Dir::R, Dir::R, true).name(), "PosRR");
    EXPECT_EQ(fence(ptx::Scope::Gl, Dir::W, Dir::W).name(),
              "F.gl-dWW");
    EXPECT_EQ(dp(DepKind::Addr, Dir::R).name(), "DpAddrdR");
}

TEST(Synthesise, MpShape)
{
    // PodWW ; Rfe ; PodRR ; Fre is the message-passing cycle.
    auto test = synthesise({po(Dir::W, Dir::W), rfe(),
                            po(Dir::R, Dir::R), fre()},
                           "mp-cycle");
    ASSERT_TRUE(test.has_value());
    EXPECT_EQ(test->program.numThreads(), 2);
    EXPECT_EQ(test->locations.size(), 2u);
    EXPECT_FALSE(test->scopeTree.sameCta(0, 1));
    // The weak outcome must be allowed by RMO but forbidden by SC.
    model::Checker rmo(cat::models::rmo());
    model::Checker sc(cat::models::sc());
    EXPECT_TRUE(rmo.allows(*test));
    EXPECT_FALSE(sc.allows(*test));
}

TEST(Synthesise, CoRRShape)
{
    // Rfe ; PosRR ; Fre: read-read coherence.
    auto test =
        synthesise({rfe(ScopeAnn::IntraCta),
                    po(Dir::R, Dir::R, true),
                    fre(ScopeAnn::IntraCta)},
                   "coRR-cycle");
    ASSERT_TRUE(test.has_value());
    EXPECT_EQ(test->locations.size(), 1u);
    EXPECT_TRUE(test->scopeTree.sameCta(0, 1));
    // Allowed under the llh relaxation, forbidden with full
    // SC-per-location.
    EXPECT_TRUE(model::Checker(cat::models::ptx()).allows(*test));
    EXPECT_FALSE(
        model::Checker(cat::models::scPerLocFull()).allows(*test));
}

TEST(Synthesise, SbShape)
{
    auto test = synthesise({po(Dir::W, Dir::R), fre(),
                            po(Dir::W, Dir::R), fre()},
                           "sb-cycle");
    ASSERT_TRUE(test.has_value());
    EXPECT_EQ(test->program.numThreads(), 2);
    EXPECT_TRUE(model::Checker(cat::models::tso()).allows(*test));
    EXPECT_FALSE(model::Checker(cat::models::sc()).allows(*test));
}

TEST(Synthesise, GlFencesForbidTheCycle)
{
    auto test =
        synthesise({fence(ptx::Scope::Gl, Dir::W, Dir::W), rfe(),
                    fence(ptx::Scope::Gl, Dir::R, Dir::R), fre()},
                   "mp+fences");
    ASSERT_TRUE(test.has_value());
    EXPECT_FALSE(model::Checker(cat::models::ptx()).allows(*test));
}

TEST(Synthesise, CtaFencesInterCtaStayAllowed)
{
    // The scoped-model signature: cta fences between inter-CTA
    // communication do not forbid the cycle.
    auto test =
        synthesise({fence(ptx::Scope::Cta, Dir::W, Dir::W), rfe(),
                    fence(ptx::Scope::Cta, Dir::R, Dir::R), fre()},
                   "mp+ctas-inter");
    ASSERT_TRUE(test.has_value());
    EXPECT_TRUE(model::Checker(cat::models::ptx()).allows(*test));

    auto intra = synthesise(
        {fence(ptx::Scope::Cta, Dir::W, Dir::W),
         rfe(ScopeAnn::IntraCta),
         fence(ptx::Scope::Cta, Dir::R, Dir::R),
         fre(ScopeAnn::IntraCta)},
        "mp+ctas-intra");
    ASSERT_TRUE(intra.has_value());
    EXPECT_FALSE(model::Checker(cat::models::ptx()).allows(*intra));
}

TEST(Synthesise, DependenciesForbidLb)
{
    // DpAddrdW ; Rfe on both sides: lb with address dependencies.
    auto test = synthesise(
        {dp(DepKind::Addr, Dir::W), rfe(), dp(DepKind::Addr, Dir::W),
         rfe()},
        "lb+deps");
    ASSERT_TRUE(test.has_value());
    EXPECT_FALSE(model::Checker(cat::models::ptx()).allows(*test));
    // Without the dependencies lb is allowed.
    auto plain = synthesise(
        {po(Dir::R, Dir::W), rfe(), po(Dir::R, Dir::W), rfe()},
        "lb");
    ASSERT_TRUE(plain.has_value());
    EXPECT_TRUE(model::Checker(cat::models::ptx()).allows(*plain));
}

TEST(Synthesise, RejectsIllFormedCycles)
{
    // Direction mismatch.
    EXPECT_FALSE(synthesise({rfe(), rfe()}, "bad").has_value());
    // No communication edge at the end.
    EXPECT_FALSE(synthesise({rfe(), po(Dir::R, Dir::W)}, "bad")
                     .has_value());
    // Unsatisfiable: read both reads-from and from-reads one write.
    EXPECT_FALSE(synthesise({rfe(), fre()}, "bad").has_value());
}

TEST(Generate, ProducesManyDistinctWellFormedTests)
{
    GeneratorOptions opts;
    opts.maxEdges = 4;
    opts.maxTests = 500;
    auto tests = generate(defaultPool(), opts);
    EXPECT_GE(tests.size(), 100u);

    std::set<std::string> names;
    for (const auto &g : tests) {
        EXPECT_TRUE(names.insert(g.cycleName).second)
            << "duplicate " << g.cycleName;
        g.test.validate();
        // Every generated test has candidate executions and the
        // asked-for outcome is reachable in *some* (unconstrained)
        // execution, i.e. the condition is not vacuous.
        auto execs = axiom::enumerateExecutions(g.test);
        EXPECT_FALSE(execs.empty()) << g.cycleName;
        bool reachable = false;
        for (const auto &ex : execs)
            reachable |= g.test.condition.eval(ex.finalState);
        EXPECT_TRUE(reachable)
            << g.cycleName << " asks for an unreachable outcome";
    }
}

/** Structural equivalence of a reparsed test with its original:
 * everything the simulator and the model checker consume. */
void
expectEquivalent(const litmus::Test &a, const litmus::Test &b,
                 const std::string &context)
{
    EXPECT_EQ(a.name, b.name) << context;
    EXPECT_EQ(a.arch, b.arch) << context;
    EXPECT_EQ(a.locations, b.locations) << context;
    EXPECT_EQ(a.regInits, b.regInits) << context;
    EXPECT_EQ(a.scopeTree, b.scopeTree) << context;
    EXPECT_EQ(a.quantifier, b.quantifier) << context;
    EXPECT_EQ(a.condition.str(), b.condition.str()) << context;
    ASSERT_EQ(a.program.numThreads(), b.program.numThreads())
        << context;
    for (int t = 0; t < a.program.numThreads(); ++t) {
        const auto &ta = a.program.threads[t];
        const auto &tb = b.program.threads[t];
        ASSERT_EQ(ta.instrs.size(), tb.instrs.size())
            << context << " T" << t;
        for (size_t i = 0; i < ta.instrs.size(); ++i) {
            EXPECT_EQ(ta.instrs[i].str(), tb.instrs[i].str())
                << context << " T" << t << " instr " << i;
        }
    }
}

TEST(Generate, EveryOutputRoundTripsThroughTheParser)
{
    // The full pipeline the `gen` subcommand relies on: every
    // generated test pretty-prints to text the litmus parser accepts
    // and reads back as an equivalent test (multi-word cycle names,
    // scope trees, dependency plumbing, final conditions included).
    GeneratorOptions opts;
    opts.maxEdges = 4;
    opts.maxTests = 250;
    auto tests = generate(defaultPool(), opts);
    ASSERT_GE(tests.size(), 100u);
    for (const auto &g : tests) {
        litmus::ParseError err;
        auto reparsed = litmus::parseTest(g.test.str(), &err);
        ASSERT_TRUE(reparsed.has_value())
            << g.cycleName << ": " << err.message << " (line "
            << err.line << ")\n"
            << g.test.str();
        expectEquivalent(g.test, *reparsed, g.cycleName);
        // And the reprint is a fixed point: parse(print(t)) prints
        // identically, so generated files are stable on disk.
        EXPECT_EQ(reparsed->str(), g.test.str()) << g.cycleName;
    }
}

TEST(Generate, RoundTripCoversScopedAndDepEdges)
{
    // Spot checks that the tricky generator outputs — scoped
    // communication edges and all three dependency kinds — survive
    // the round trip, independent of whatever generate() happens to
    // enumerate first.
    std::vector<std::vector<Edge>> cycles = {
        {po(Dir::W, Dir::W), rfe(ScopeAnn::IntraCta),
         po(Dir::R, Dir::R), fre(ScopeAnn::IntraCta)},
        {dp(DepKind::Addr, Dir::W), rfe(), dp(DepKind::Data, Dir::W),
         rfe()},
        {dp(DepKind::Ctrl, Dir::W), rfe(ScopeAnn::IntraCta),
         po(Dir::R, Dir::W), rfe(ScopeAnn::IntraCta)},
        {fence(ptx::Scope::Cta, Dir::W, Dir::W), rfe(),
         fence(ptx::Scope::Sys, Dir::R, Dir::R), fre()},
    };
    for (const auto &cycle : cycles) {
        std::string name;
        for (const auto &e : cycle)
            name += (name.empty() ? "" : " ") + e.name();
        auto test = synthesise(cycle, name);
        ASSERT_TRUE(test.has_value()) << name;
        auto reparsed = litmus::parseTest(test->str());
        ASSERT_TRUE(reparsed.has_value()) << name;
        expectEquivalent(*test, *reparsed, name);
    }
}

TEST(Generate, HonoursCaps)
{
    GeneratorOptions opts;
    opts.maxEdges = 5;
    opts.maxTests = 37;
    EXPECT_EQ(generate(defaultPool(), opts).size(), 37u);
}

TEST(Generate, ScopedPoolAddsIntraCtaVariants)
{
    GeneratorOptions opts;
    opts.maxEdges = 3;
    opts.maxTests = 10000;
    auto scoped = generate(defaultPool(true), opts);
    auto unscoped = generate(defaultPool(false), opts);
    EXPECT_GT(scoped.size(), unscoped.size());
}

} // namespace
} // namespace gpulitmus::gen
