/**
 * @file
 * Tests for the Scenario API: Builder lowering (structural equality
 * with the hand-written library tests), registry spec resolution,
 * litmus round trips of every registry scenario, exact (mc) verdicts
 * for the application bugs on weak chips, and the Campaign/backend
 * semantics of scenario jobs.
 */

#include <gtest/gtest.h>

#include "cuda/snippets.h"
#include "eval/backend.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "litmus/parser.h"
#include "mc/explorer.h"
#include "model/checker.h"
#include "scenario/builder.h"
#include "scenario/catalog.h"
#include "scenario/registry.h"

namespace gpulitmus::scenario {
namespace {

// ---------------------------------------------------------------------
// Builder lowering: typed handles produce the same litmus::Test the
// hand-written library builds from PTX text.
// ---------------------------------------------------------------------

TEST(Builder, MpMatchesHandWrittenLibraryTest)
{
    Builder b("mp");
    Loc x = b.global("x", 0);
    Loc y = b.global("y", 0);
    Thread &t0 = b.thread();
    t0.st(x, 1).st(y, 1);
    Thread &t1 = b.thread();
    Reg r1 = t1.reg("r1");
    Reg r2 = t1.reg("r2");
    t1.ld(r1, y).ld(r2, x);
    litmus::Test built = b.allow(r1 == 1 && r2 == 0).build();

    EXPECT_EQ(built.str(), litmus::paperlib::mp().str());
}

TEST(Builder, CasSlMatchesHandWrittenLibraryTest)
{
    for (bool fences : {false, true}) {
        Builder b(fences ? "cas-sl+fences" : "cas-sl");
        Loc x = b.global("x", 0);
        Loc m = b.global("m", 1);
        Thread &t0 = b.thread();
        Reg r0 = t0.reg("r0");
        t0.st(x, 1);
        if (fences)
            t0.membar();
        t0.exch(r0, m, 0);
        Thread &t1 = b.thread();
        Reg r1 = t1.reg("r1");
        Reg p2 = t1.reg("p2");
        Reg r3 = t1.reg("r3");
        t1.cas(r1, m, 0, 1).setpEq(p2, r1, 0);
        if (fences)
            t1.membar().onlyIf(p2);
        t1.ld(r3, x).onlyIf(p2);
        litmus::Test built = b.allow(r1 == 0 && r3 == 0).build();

        EXPECT_EQ(built.str(),
                  litmus::paperlib::casSl(fences).str());
    }
}

TEST(Builder, CatalogProgramsMatchCudaDistillations)
{
    // The registry scenarios reuse the Tab. 5 instruction encodings:
    // program text identical to the CUDA distillations, only the
    // name and the quantifier (forbid vs exists) differ.
    EXPECT_EQ(casSpinlock(false).program.str(),
              cuda::distillCasSpinLock(false).program.str());
    EXPECT_EQ(casSpinlock(true).program.str(),
              cuda::distillCasSpinLock(true).program.str());
    EXPECT_EQ(workStealingDeque(false).program.str(),
              cuda::distillDequeMp(false).program.str());
    EXPECT_EQ(workStealingDeque(true).program.str(),
              cuda::distillDequeMp(true).program.str());
    EXPECT_EQ(casSpinlock(false).quantifier,
              litmus::Quantifier::NotExists);
    EXPECT_EQ(casSpinlock(false).condition.str(),
              cuda::distillCasSpinLock(false).condition.str());
}

TEST(Builder, ModifiersRewriteTheLastInstruction)
{
    Builder b("mods");
    Loc x = b.global("x", 0);
    Thread &t0 = b.thread();
    Reg r0 = t0.reg("r0");
    Reg p0 = t0.reg("p0");
    t0.ld(r0, x).volatile_();
    t0.setpEq(p0, r0, 0);
    t0.membar(ptx::Scope::Cta).unless(p0);
    t0.st(x, 1).ca().onlyIf(p0);
    litmus::Test test = b.allow(r0 == 0).build();

    const auto &instrs = test.program.threads[0].instrs;
    ASSERT_EQ(instrs.size(), 4u);
    EXPECT_TRUE(instrs[0].isVolatile);
    EXPECT_EQ(instrs[0].cacheOp, ptx::CacheOp::None);
    EXPECT_EQ(instrs[2].scope, ptx::Scope::Cta);
    EXPECT_TRUE(instrs[2].hasGuard);
    EXPECT_TRUE(instrs[2].guardNegated);
    EXPECT_EQ(instrs[3].cacheOp, ptx::CacheOp::Ca);
    EXPECT_TRUE(instrs[3].hasGuard);
    EXPECT_FALSE(instrs[3].guardNegated);
}

TEST(Builder, DependencyModifierEmitsFig13Shapes)
{
    // Data dependency: the store value routes through and/add on the
    // source register; address dependency: the load address routes
    // through cvt/add onto an address-initialised register.
    Builder b("deps");
    Loc x = b.global("x", 0);
    Loc y = b.global("y", 0);
    Thread &t0 = b.thread();
    Reg r1 = t0.reg("r1");
    t0.ld(r1, x);
    t0.st(y, 1).dependsOn(r1);
    Reg r2 = t0.reg("r2");
    t0.ld(r2, x).dependsOn(r1);
    litmus::Test test = b.allow(r1 == 1).build();

    // ld; [and, add, st] (data dep); [and, cvt, add, ld] (addr dep).
    const auto &instrs = test.program.threads[0].instrs;
    ASSERT_EQ(instrs.size(), 8u);
    EXPECT_EQ(instrs[1].op, ptx::Opcode::And);
    EXPECT_EQ(instrs[2].op, ptx::Opcode::Add);
    EXPECT_EQ(instrs[3].op, ptx::Opcode::St);
    EXPECT_TRUE(instrs[3].srcs[0].isReg());
    EXPECT_EQ(instrs[5].op, ptx::Opcode::Cvt);
    EXPECT_EQ(instrs[7].op, ptx::Opcode::Ld);
    EXPECT_TRUE(instrs[7].addr.isReg());
    // The address register is initialised with the location address.
    bool addr_init = false;
    for (const auto &ri : test.regInits)
        addr_init |= ri.isLocAddress && ri.loc == "x";
    EXPECT_TRUE(addr_init);
    // The whole thing still round-trips through the litmus format.
    auto reparsed = litmus::parseTest(test.str());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->str(), test.str());
}

TEST(Builder, ThreadPlacementShapesTheScopeTree)
{
    Builder b("placed");
    Loc x = b.global("x", 0);
    Thread &t0 = b.thread(0, 0);
    Thread &t1 = b.thread(0, 1);
    Thread &t2 = b.thread(1, 0);
    Reg r0 = t0.reg("r0");
    t0.ld(r0, x);
    t1.st(x, 1);
    t2.st(x, 2);
    litmus::Test test = b.allow(r0 == 0).build();
    EXPECT_TRUE(test.scopeTree.sameCta(0, 1));
    EXPECT_FALSE(test.scopeTree.sameWarp(0, 1));
    EXPECT_FALSE(test.scopeTree.sameCta(0, 2));
}

// ---------------------------------------------------------------------
// Registry: spec parsing and round trips.
// ---------------------------------------------------------------------

TEST(Registry, SpecResolutionAndErrors)
{
    EXPECT_TRUE(isSpec("scenario:seqlock"));
    EXPECT_FALSE(isSpec("litmus-tests/mp.litmus"));

    auto built = buildSpec("scenario:spinlock_dot_product,threads=3,"
                           "fenced=1");
    ASSERT_TRUE(built.has_value());
    EXPECT_EQ(built->test.name, "spinlock_dot_product+t3+fences");
    EXPECT_EQ(built->test.program.numThreads(), 3);
    EXPECT_EQ(built->maxMicroSteps, 20000);

    // A bare key is a boolean switch.
    auto bare = buildSpec("scenario:cas_spinlock,fenced");
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->test.name, "cas_spinlock+fences");

    std::string error;
    EXPECT_FALSE(buildSpec("scenario:nope", &error).has_value());
    EXPECT_NE(error.find("unknown scenario"), std::string::npos);
    EXPECT_NE(error.find("spinlock_dot_product"), std::string::npos);
    EXPECT_FALSE(
        buildSpec("scenario:seqlock,bogus=1", &error).has_value());
    EXPECT_NE(error.find("unknown scenario parameter"),
              std::string::npos);
    EXPECT_FALSE(
        buildSpec("scenario:seqlock,fenced=maybe", &error)
            .has_value());
    // Out-of-range values are a recoverable error, not a fatal.
    EXPECT_FALSE(buildSpec("scenario:spinlock_dot_product,threads=9",
                           &error)
                     .has_value());
    EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(Registry, EveryScenarioRoundTripsThroughTheLitmusFormat)
{
    // build -> str -> parse -> str must be a fixed point: registry
    // scenarios (labels, spin loops, guards, volatile accesses,
    // negated conditions included) are full citizens of the on-disk
    // format.
    for (const auto &s : all()) {
        for (int fenced = 0; fenced <= 1; ++fenced) {
            auto built = buildSpec("scenario:" + s.name +
                                   ",fenced=" + std::to_string(fenced));
            ASSERT_TRUE(built.has_value()) << s.name;
            std::string text = built->test.str();
            litmus::ParseError err;
            auto reparsed = litmus::parseTest(text, &err);
            ASSERT_TRUE(reparsed.has_value())
                << s.name << ": " << err.message << "\n"
                << text;
            EXPECT_EQ(reparsed->str(), text) << s.name;
        }
    }
}

TEST(Registry, ScenariosDeclareTheirBugAsForbidden)
{
    for (const auto &s : all()) {
        auto built = buildSpec("scenario:" + s.name);
        ASSERT_TRUE(built.has_value());
        EXPECT_EQ(built->test.quantifier,
                  litmus::Quantifier::NotExists)
            << s.name;
        EXPECT_GE(all().size(), 6u);
    }
}

// ---------------------------------------------------------------------
// Exact verdicts: the paper's application bugs, settled by the
// explorer on weak chip profiles.
// ---------------------------------------------------------------------

mc::ExploreResult
explore(const litmus::Test &test, const char *chip,
        int max_micro_steps)
{
    mc::ExploreOptions opts;
    opts.machine.maxMicroSteps = max_micro_steps;
    return mc::Explorer(sim::chip(chip), test, opts).explore();
}

TEST(ExactVerdicts, UnfencedSpinLockLosesUpdatesFencedProvenSafe)
{
    // The bug, definitively: a concrete schedule reaches a wrong sum
    // on the weak Tesla C2075.
    mc::ExploreResult buggy =
        explore(spinlockDotProduct(2, false), "TesC", 20000);
    EXPECT_FALSE(buggy.satisfying.empty());

    // The fix, definitively: with the (+) fences no terminating
    // execution loses an update (spin loops are explored modulo the
    // runaway guard — fairComplete).
    mc::ExploreResult fixed =
        explore(spinlockDotProduct(2, true), "TesC", 20000);
    EXPECT_TRUE(fixed.satisfying.empty());
    EXPECT_TRUE(fixed.fairComplete);
}

TEST(ExactVerdicts, UnfencedDequeLosesTasksFencedExactUnreachable)
{
    // The deque distillation is loop-free: the fenced variant gets
    // the full exact-unreachable proof, not just the fair one.
    mc::ExploreResult buggy =
        explore(workStealingDeque(false), "Titan", 4000);
    EXPECT_FALSE(buggy.satisfying.empty());

    mc::ExploreResult fixed =
        explore(workStealingDeque(true), "Titan", 4000);
    EXPECT_TRUE(fixed.satisfying.empty());
    EXPECT_TRUE(fixed.complete);
    EXPECT_TRUE(fixed.fairComplete);
}

TEST(ExactVerdicts, StrongChipNeverLosesUpdatesEvenUnfenced)
{
    // The GTX 750 (Maxwell) shows none of the weak behaviours: even
    // the unfenced lock never reaches a wrong sum.
    mc::ExploreResult r =
        explore(spinlockDotProduct(2, false), "GTX7", 20000);
    EXPECT_TRUE(r.satisfying.empty());
    EXPECT_TRUE(r.fairComplete);
}

// ---------------------------------------------------------------------
// Campaign and backend semantics of scenario jobs.
// ---------------------------------------------------------------------

TEST(CampaignScenarios, SpecAxisAndMicroStepFloor)
{
    harness::Campaign campaign;
    campaign.iterations(500)
        .overChips(std::vector<std::string>{"Titan", "TesC"})
        .scenario("scenario:spinlock_dot_product")
        .scenario("scenario:seqlock");
    auto jobs = campaign.jobs();
    ASSERT_EQ(jobs.size(), 4u);
    // Row-major: test outermost, chip inner.
    EXPECT_EQ(jobs[0].test.name, "spinlock_dot_product+t2");
    EXPECT_EQ(jobs[0].chip.shortName, "Titan");
    EXPECT_EQ(jobs[1].chip.shortName, "TesC");
    EXPECT_EQ(jobs[2].test.name, "seqlock");
    // The spin-loop scenario raises its micro-step cap; the
    // straight-line one keeps the campaign default.
    EXPECT_EQ(jobs[0].maxMicroSteps, 20000);
    EXPECT_EQ(jobs[2].maxMicroSteps, 4000);
    // Labels default to the parameterised test name.
    EXPECT_EQ(jobs[0].displayLabel(),
              "spinlock_dot_product+t2@Titan");
}

TEST(CampaignScenarios, JobKeySemanticsPerBackend)
{
    harness::Campaign campaign;
    campaign.iterations(1000).scenario("scenario:cas_spinlock");
    campaign.overBackends({harness::kSimBackend, harness::kMcBackend,
                           "ptx"});
    auto jobs = campaign.jobs();
    ASSERT_EQ(jobs.size(), 3u);

    // Sim keys move with the seed; mc and model keys do not (the
    // search and the model evaluation are deterministic).
    auto reseeded = [](harness::Job job) {
        job.seed ^= 0xabcdef;
        return job.key();
    };
    EXPECT_NE(jobs[0].key(), reseeded(jobs[0]));
    EXPECT_EQ(jobs[1].key(), reseeded(jobs[1]));
    EXPECT_EQ(jobs[2].key(), reseeded(jobs[2]));

    // The mc key keeps the chip axis; the model key drops it.
    auto rechipped = [](harness::Job job) {
        job.chip = sim::chip("TesC");
        return job.key();
    };
    EXPECT_NE(jobs[1].key(), rechipped(jobs[1]));
    EXPECT_EQ(jobs[2].key(), rechipped(jobs[2]));

    // The mc cache key carries the budget (iterations).
    harness::Job mc_job = jobs[1];
    uint64_t key_before = mc_job.cacheKey();
    mc_job.iterations *= 2;
    EXPECT_NE(mc_job.cacheKey(), key_before);
    EXPECT_EQ(mc_job.key(), jobs[1].key());
}

TEST(CampaignScenarios, AllScenariosUnderAllFourBackends)
{
    // The acceptance grid: every registry scenario through the
    // sampler, the explorer, the PTX model and the Sec. 6 baseline
    // in ONE campaign. Scenarios outside the model scope
    // (volatile accesses or spin loops, Sec. 5.5) get an explicit
    // out-of-scope refusal from the model backends — every job
    // completes, nothing hangs, nothing joins as trivially sound.
    std::vector<std::string> specs;
    for (const auto &s : all())
        specs.push_back("scenario:" + s.name);

    harness::Campaign campaign;
    campaign.iterations(200).overScenarios(specs);
    campaign.overBackends({harness::kSimBackend, harness::kMcBackend,
                           "ptx", "baseline"});
    auto jobs = campaign.jobs();
    ASSERT_EQ(jobs.size(), all().size() * 4);
    // mc jobs would explore with the sampling iteration count as
    // budget; give them a real one.
    for (auto &job : jobs) {
        if (job.isMc())
            job.iterations = 200000;
    }

    eval::EngineOptions eopts;
    eopts.threads = 2;
    eval::Engine engine(eopts);
    auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    size_t in_scope_verdicts = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        EXPECT_EQ(r.backend, jobs[i].backend);
        if (r.backend == harness::kSimBackend) {
            ASSERT_TRUE(r.hasHist());
            EXPECT_EQ(r.hist->total(), 200u);
        } else if (r.backend == harness::kMcBackend) {
            ASSERT_TRUE(r.hasExact());
            EXPECT_FALSE(r.exact->finals.empty());
        } else {
            ASSERT_TRUE(r.hasVerdict());
            if (model::inModelScope(jobs[i].test)) {
                EXPECT_FALSE(r.verdict->outOfScope);
                EXPECT_GT(r.verdict->numCandidates, 0u);
                ++in_scope_verdicts;
            } else {
                EXPECT_TRUE(r.verdict->outOfScope);
                EXPECT_EQ(r.verdict->numCandidates, 0u);
            }
        }
    }
    // cas_spinlock and seqlock are loop-free .cg programs: both
    // models actually evaluate them.
    EXPECT_GE(in_scope_verdicts, 4u);
}

TEST(CampaignScenarios, UnknownSpecInCliStyleResolutionFails)
{
    std::string error;
    EXPECT_FALSE(buildSpec("scenario:", &error).has_value());
    EXPECT_FALSE(buildSpec("mp.litmus", &error).has_value());
    EXPECT_NE(error.find("not a scenario spec"), std::string::npos);
}

} // namespace
} // namespace gpulitmus::scenario
