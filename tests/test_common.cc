/**
 * @file
 * Unit tests for the common utilities: RNG determinism and
 * distribution sanity, string helpers, table rendering.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.h"
#include "common/strutil.h"
#include "common/table.h"

namespace gpulitmus {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool lo_seen = false, hi_seen = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo_seen |= v == -2;
        hi_seen |= v == 2;
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesP)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SplitIndependent)
{
    Rng a(29);
    Rng b = a.split();
    EXPECT_NE(a.next(), b.next());
}

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strutil, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strutil, SplitWhitespace)
{
    auto parts = splitWhitespace("  a\t\tb  c ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strutil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("membar.gl", "membar"));
    EXPECT_FALSE(startsWith("mem", "membar"));
    EXPECT_TRUE(endsWith("membar.gl", ".gl"));
    EXPECT_FALSE(endsWith("gl", ".gl"));
}

TEST(Strutil, ParseInt)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt("0x10").value(), 16);
    EXPECT_EQ(parseInt("0x80000000").value(), 0x80000000LL);
    EXPECT_FALSE(parseInt("4x2").has_value());
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt("abc").has_value());
}

TEST(Strutil, Join)
{
    std::vector<std::string> v{"a", "b", "c"};
    EXPECT_EQ(join(v, ", "), "a, b, c");
    EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
}

TEST(Table, AlignsColumns)
{
    Table t;
    t.header({"name", "obs"});
    t.row({"coRR", "11642"});
    t.row({"mp", "3"});
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("11642"), std::string::npos);
    // Each line has the same length for rows of equal arity.
    std::istringstream ss(s);
    std::string l1, l2, l3, l4;
    std::getline(ss, l1);
    std::getline(ss, l2);
    std::getline(ss, l3);
    std::getline(ss, l4);
    EXPECT_EQ(l3.size(), l4.size());
}

TEST(Table, HandlesRaggedRows)
{
    Table t;
    t.row({"a"});
    t.row({"b", "c", "d"});
    EXPECT_NE(t.str().find("d"), std::string::npos);
}

} // namespace
} // namespace gpulitmus
