/**
 * @file
 * Differential / metamorphic battery for parallel exact exploration
 * (mc/explorer.cc, "optimistic exploration, deterministic commit").
 *
 * The claims under test, in rising order of subtlety:
 *
 * - *Shard-count invariance.* For every corpus test and every
 *   registry-scenario variant, explorations at shards 1, 4 and 8
 *   produce byte-identical results: reachable sets, weights,
 *   verdicts, completeness flags, and the full statistics block
 *   (replays, cuts, sleep skips, resumes, replayed choices, peak
 *   depth). Completed searches compare at equal per-shard budgets;
 *   bounded searches compare at equal *total* budgets (the shards=N
 *   budget pool is maxReplays x N, so shards=4 with B/4 per shard
 *   must equal shards=1 with B — replay for replay).
 * - *Sampling oracle.* Sampled simulator outcomes (3 seeds) are a
 *   subset of the exact reachable set whenever the exploration
 *   settled (complete, or fair-complete for spin-loop scenarios).
 *   A traversal bug that loses or invents reachable states breaks
 *   this from either side.
 * - *Merged statistics.* The per-subtree stats fold in subtree-id
 *   order into one block; resumes/replayedChoices/peakDepth are the
 *   sequential values, not the last worker's (the ISSUE-9 satellite
 *   regression).
 * - *Concurrent cache semantics.* ShardMap collision behaviour
 *   (insert on a present key is a no-op returning false; lookup
 *   copies under the shard lock) and WorkStealDeque take-exactly-once
 *   under a steal storm.
 * - *Budget races.* Budget exhaustion racing subtree completion
 *   still yields the sequential bounded result, bit for bit.
 *
 * The whole battery also compiles under -fsanitize=thread in CI,
 * which is what turns "no data race we noticed" into "no data race
 * TSan can observe on these schedules".
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/campaign.h"
#include "litmus/parser.h"
#include "mc/explorer.h"
#include "mc/shardmap.h"
#include "mc/worksteal.h"
#include "scenario/registry.h"
#include "sim/chip.h"

#ifndef GPULITMUS_SOURCE_DIR
#define GPULITMUS_SOURCE_DIR "."
#endif

namespace gpulitmus {
namespace {

// ---------------------------------------------------------------------
// Inputs: the whole corpus, and every scenario variant.
// ---------------------------------------------------------------------

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    std::string dir =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests";
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.path().extension() == ".litmus")
            files.push_back(e.path().filename().string());
    }
    std::sort(files.begin(), files.end());
    EXPECT_GE(files.size(), 10u);
    return files;
}

litmus::Test
loadCorpus(const std::string &name)
{
    std::string path =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    auto test = litmus::parseTest(ss.str());
    EXPECT_TRUE(test.has_value()) << path;
    return *test;
}

/** Every registry scenario in both fence variants — the "14 scenario
 * variants" axis the benches sweep. */
std::vector<std::string>
variantSpecs()
{
    std::vector<std::string> specs;
    for (const auto &s : scenario::all()) {
        for (int fenced = 0; fenced <= 1; ++fenced)
            specs.push_back("scenario:" + s.name +
                            ",fenced=" + std::to_string(fenced));
    }
    EXPECT_EQ(specs.size(), 14u);
    return specs;
}

mc::ExploreResult
exploreTest(const litmus::Test &test, const char *chip, int column,
            mc::ExploreOptions opts)
{
    opts.machine.inc = sim::Incantations::fromColumn(column);
    return mc::Explorer(sim::chip(chip), test, opts).explore();
}

/** Full-result equality: str() covers the reachable set with weights,
 * the satisfying marks, the completeness claim and every statistic —
 * one comparison, byte for byte. The budget fields are compared
 * separately because they carry the (intended) x-shards scaling. */
void
expectIdentical(const mc::ExploreResult &a, const mc::ExploreResult &b,
                const litmus::Test &test, const std::string &label)
{
    EXPECT_EQ(a.str(), b.str()) << label;
    EXPECT_EQ(a.verdict(test), b.verdict(test)) << label;
    EXPECT_EQ(a.complete, b.complete) << label;
    EXPECT_EQ(a.fairComplete, b.fairComplete) << label;
    EXPECT_EQ(a.finals, b.finals) << label;
    EXPECT_EQ(a.satisfying, b.satisfying) << label;
    EXPECT_EQ(a.paths, b.paths) << label;
    EXPECT_EQ(a.stats.replays, b.stats.replays) << label;
    EXPECT_EQ(a.stats.choicePoints, b.stats.choicePoints) << label;
    EXPECT_EQ(a.stats.stateCuts, b.stats.stateCuts) << label;
    EXPECT_EQ(a.stats.sleepSkips, b.stats.sleepSkips) << label;
    EXPECT_EQ(a.stats.distinctStates, b.stats.distinctStates)
        << label;
    EXPECT_EQ(a.stats.peakDepth, b.stats.peakDepth) << label;
    EXPECT_EQ(a.stats.resumes, b.stats.resumes) << label;
    EXPECT_EQ(a.stats.replayedChoices, b.stats.replayedChoices)
        << label;
}

// ---------------------------------------------------------------------
// Shard-count invariance.
// ---------------------------------------------------------------------

TEST(ShardDiff, CorpusShardCountInvariance)
{
    // Every corpus test completes within the default budget at
    // column 16, so shards 1/4/8 must agree on *everything* — the
    // scaled budget pool is simply never drawn past the sequential
    // spend.
    for (const std::string &file : corpusFiles()) {
        litmus::Test test = loadCorpus(file);
        mc::ExploreOptions opts;
        mc::ExploreResult base =
            exploreTest(test, "Titan", 16, opts);
        ASSERT_TRUE(base.complete) << file;
        for (int shards : {4, 8}) {
            mc::ExploreOptions sopts;
            sopts.shards = shards;
            mc::ExploreResult r =
                exploreTest(test, "Titan", 16, sopts);
            expectIdentical(base, r, test,
                            file + " shards=" +
                                std::to_string(shards));
        }
    }
}

TEST(ShardDiff, ScenarioShardCountInvariance)
{
    // Scenario trees range from trivially drained to far beyond any
    // CI budget, so compare at an equal *total* budget: shards=N with
    // B/N per shard owns the same global pool as shards=1 with B.
    // Light variants complete identically; heavy variants go bounded
    // identically — same reachable lower bound, same burned budget,
    // same verdict. (Full completion of the heavy variants at
    // shards>=4 is the acceptance run / bench gate, not a unit
    // test.)
    const uint64_t kTotalReplays = 1u << 14;
    const uint64_t kTotalStates = 1u << 20;
    for (const std::string &spec : variantSpecs()) {
        std::string error;
        auto built = scenario::buildSpec(spec, &error);
        ASSERT_TRUE(built.has_value()) << error;
        mc::ExploreOptions opts;
        opts.machine.maxMicroSteps = built->maxMicroSteps;
        opts.maxReplays = kTotalReplays;
        opts.maxStates = kTotalStates;
        mc::ExploreResult base =
            exploreTest(built->test, "TesC", 16, opts);
        for (int shards : {4, 8}) {
            mc::ExploreOptions sopts;
            sopts.machine.maxMicroSteps = built->maxMicroSteps;
            sopts.shards = shards;
            sopts.maxReplays =
                kTotalReplays / static_cast<uint64_t>(shards);
            sopts.maxStates =
                kTotalStates / static_cast<uint64_t>(shards);
            mc::ExploreResult r =
                exploreTest(built->test, "TesC", 16, sopts);
            expectIdentical(base, r, built->test,
                            spec + " shards=" +
                                std::to_string(shards));
        }
    }
}

TEST(ShardDiff, DebugKeyModeShardInvariance)
{
    // The string-keyed debug memo exercises the parallel cache's
    // other half (committedStr / seedsStr): same invariance claim,
    // and cross-checked against the digest mode.
    litmus::Test test = loadCorpus("mp.litmus");
    mc::ExploreOptions fast;
    mc::ExploreResult digest = exploreTest(test, "Titan", 16, fast);
    for (int shards : {1, 4}) {
        mc::ExploreOptions opts;
        opts.debugStateKeys = true;
        opts.shards = shards;
        mc::ExploreResult r = exploreTest(test, "Titan", 16, opts);
        expectIdentical(digest, r, test,
                        "debug-keys shards=" +
                            std::to_string(shards));
    }
}

// ---------------------------------------------------------------------
// Sampling oracle: sim ⊆ mc.
// ---------------------------------------------------------------------

TEST(ShardDiff, CorpusSampledOutcomesSubsetOfExact)
{
    for (const std::string &file : corpusFiles()) {
        litmus::Test test = loadCorpus(file);
        mc::ExploreOptions opts;
        opts.shards = 4;
        mc::ExploreResult exact =
            exploreTest(test, "Titan", 16, opts);
        ASSERT_TRUE(exact.complete) << file;
        for (uint64_t seed : {1u, 2u, 3u}) {
            harness::RunConfig cfg;
            cfg.iterations = 1000;
            cfg.seed = seed;
            cfg.inc = sim::Incantations::fromColumn(16);
            litmus::Histogram hist =
                harness::run(sim::chip("Titan"), test, cfg);
            for (const auto &[key, count] : hist.counts()) {
                if (count > 0) {
                    EXPECT_TRUE(exact.reachable(key))
                        << file << " seed " << seed << ": sampled '"
                        << key << "' escaped the exploration";
                }
            }
        }
    }
}

TEST(ShardDiff, ScenarioSampledOutcomesSubsetOfExact)
{
    // The oracle holds wherever the exploration settled: `complete`
    // is airtight; `fairComplete` covers every terminating execution
    // and the scenarios' maxMicroSteps headroom keeps the sampler's
    // runaway guard out of play. Variants that stay bounded at this
    // budget (the heavy lock scenarios) are skipped here — their
    // reachable set is only a lower bound, so subset is not a
    // theorem.
    const uint64_t kPerShard = 1u << 15;
    for (const std::string &spec : variantSpecs()) {
        std::string error;
        auto built = scenario::buildSpec(spec, &error);
        ASSERT_TRUE(built.has_value()) << error;
        mc::ExploreOptions opts;
        opts.machine.maxMicroSteps = built->maxMicroSteps;
        opts.maxReplays = kPerShard;
        opts.shards = 4;
        mc::ExploreResult exact =
            exploreTest(built->test, "TesC", 16, opts);
        if (!exact.complete && !exact.fairComplete)
            continue;
        for (uint64_t seed : {7u, 8u, 9u}) {
            harness::RunConfig cfg;
            cfg.iterations = 300;
            cfg.seed = seed;
            cfg.maxMicroSteps = built->maxMicroSteps;
            cfg.inc = sim::Incantations::fromColumn(16);
            litmus::Histogram hist =
                harness::run(sim::chip("TesC"), built->test, cfg);
            for (const auto &[key, count] : hist.counts()) {
                if (count > 0) {
                    EXPECT_TRUE(exact.reachable(key))
                        << spec << " seed " << seed << ": sampled '"
                        << key << "' escaped the exploration";
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Merged statistics (the report()-prints-last-worker regression).
// ---------------------------------------------------------------------

TEST(ShardDiff, MergedStatsAreSequentialNotLastWorker)
{
    // mp@Titan col16 is pinned at 4400 replays by test_mc; the
    // sharded merge must reproduce the same 4400 — plus identical
    // resumes, replayed choices and peak depth — because per-subtree
    // stats fold in subtree-id order, never "whatever finished
    // last".
    litmus::Test test = loadCorpus("mp.litmus");
    mc::ExploreOptions seq;
    mc::ExploreResult r1 = exploreTest(test, "Titan", 16, seq);
    EXPECT_EQ(r1.stats.replays, 4400u);
    for (int shards : {2, 4, 8}) {
        mc::ExploreOptions opts;
        opts.shards = shards;
        mc::ExploreResult rN = exploreTest(test, "Titan", 16, opts);
        EXPECT_EQ(rN.stats.replays, 4400u) << shards;
        EXPECT_EQ(rN.stats.resumes, r1.stats.resumes) << shards;
        EXPECT_EQ(rN.stats.replayedChoices,
                  r1.stats.replayedChoices)
            << shards;
        EXPECT_EQ(rN.stats.peakDepth, r1.stats.peakDepth) << shards;
        // report() renders from the merged block: identical modulo
        // the (intended) budget-pool scaling lines.
        EXPECT_EQ(rN.str(), r1.str()) << shards;
        EXPECT_NE(rN.report().find("4400"), std::string::npos)
            << shards;
    }
}

TEST(ShardDiff, BudgetFieldsScaleWithShards)
{
    litmus::Test test = loadCorpus("mp.litmus");
    mc::ExploreOptions opts;
    opts.maxReplays = 1000;
    opts.maxStates = 2000;
    opts.shards = 4;
    mc::ExploreResult r = exploreTest(test, "Titan", 16, opts);
    EXPECT_EQ(r.budgetReplays, 4000u);
    EXPECT_EQ(r.budgetStates, 8000u);
}

// ---------------------------------------------------------------------
// Budget exhaustion racing completion.
// ---------------------------------------------------------------------

TEST(ShardDiff, BoundedVerdictStableUnderBudgetRace)
{
    // A total budget below the 4400-replay drain forces workers to
    // race the shared pool to exhaustion; the committed result must
    // still be the sequential bounded result for the same total.
    // Several repeats shake the thread interleaving.
    litmus::Test test = loadCorpus("mp.litmus");
    mc::ExploreOptions seq;
    seq.maxReplays = 1200;
    mc::ExploreResult base = exploreTest(test, "Titan", 16, seq);
    EXPECT_FALSE(base.complete);
    EXPECT_EQ(base.stats.replays, 1200u);
    for (int round = 0; round < 3; ++round) {
        mc::ExploreOptions opts;
        opts.maxReplays = 300;
        opts.shards = 4;
        mc::ExploreResult r = exploreTest(test, "Titan", 16, opts);
        EXPECT_FALSE(r.complete) << round;
        expectIdentical(base, r, test,
                        "race round " + std::to_string(round));
    }
}

TEST(ShardDiff, ShardThreadsIsWallClockOnly)
{
    // Worker-thread count changes scheduling only: 1 thread and 3
    // threads commit the same traversal.
    litmus::Test test = loadCorpus("sb.litmus");
    mc::ExploreOptions one;
    one.shards = 4;
    one.shardThreads = 1;
    mc::ExploreResult r1 = exploreTest(test, "Titan", 16, one);
    mc::ExploreOptions three;
    three.shards = 4;
    three.shardThreads = 3;
    mc::ExploreResult r3 = exploreTest(test, "Titan", 16, three);
    expectIdentical(r1, r3, test, "shardThreads 1 vs 3");
}

// ---------------------------------------------------------------------
// Concurrent cache semantics.
// ---------------------------------------------------------------------

TEST(ShardMapSemantics, InsertCollisionIsANoOpReturningFalse)
{
    mc::DigestShardMap map;
    Digest128 k{0x1234, 0xabcd};
    EXPECT_TRUE(map.insert(k, 7, {1, 2, 3}));
    EXPECT_FALSE(map.insert(k, 9, {9, 9}));
    EXPECT_EQ(map.size(), 1u);
    mc::DigestShardMap::Entry e;
    ASSERT_TRUE(map.lookup(k, e));
    // First writer wins: the colliding insert changed nothing, so
    // the sleep-set-keyed digest and its memoised finals are the
    // original subtree's — the explorer's loop-dedup cross-check
    // (executedSig comparison at every hit) is what demotes the
    // exactness claim when the collision was a spin-loop revisit.
    EXPECT_EQ(e.executedSig, 7u);
    EXPECT_EQ(e.finals, (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_TRUE(map.contains(k));
    EXPECT_FALSE(map.contains(Digest128{0x1234, 0xabce}));
}

TEST(ShardMapSemantics, LookupCopiesOutUnderRehash)
{
    // lookup() returns a copy, so entries stay valid across an
    // arbitrary number of later inserts (which may rehash shards).
    mc::DigestShardMap map;
    Digest128 k{42, 0};
    map.insert(k, 1, {5});
    mc::DigestShardMap::Entry e;
    ASSERT_TRUE(map.lookup(k, e));
    for (uint64_t i = 0; i < 5000; ++i)
        map.insert(Digest128{i, i << 32}, i, {i});
    EXPECT_EQ(e.finals, (std::vector<uint64_t>{5}));
    EXPECT_EQ(map.size(), 5001u);
}

TEST(ShardMapSemantics, ConcurrentReadersSeeCommittedEntries)
{
    // One writer (the commit role), many readers (the worker role):
    // every key a reader observes must carry its full entry. Run
    // under TSan in CI to certify the locking.
    mc::DigestShardMap map;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> seen{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            mc::DigestShardMap::Entry e;
            while (!stop.load(std::memory_order_acquire)) {
                for (uint64_t i = 0; i < 512; ++i) {
                    if (map.lookup(Digest128{i, i * 3}, e)) {
                        EXPECT_EQ(e.executedSig, i);
                        EXPECT_EQ(e.finals,
                                  (std::vector<uint64_t>{i, i + 1}));
                        seen.fetch_add(1,
                                       std::memory_order_relaxed);
                    }
                }
            }
        });
    }
    for (uint64_t i = 0; i < 512; ++i)
        map.insert(Digest128{i, i * 3}, i, {i, i + 1});
    stop.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(map.size(), 512u);
}

TEST(WorkStealSemantics, EveryTaskTakenExactlyOnce)
{
    // A steal storm against one owner deque: each task id must be
    // handed out exactly once across pop() and steal().
    constexpr uint32_t kTasks = 64;
    mc::WorkStealDeque dq(kTasks);
    for (uint32_t i = 0; i < kTasks; ++i)
        dq.push(i);
    std::vector<std::atomic<int>> taken(kTasks);
    std::vector<std::thread> thieves;
    for (int t = 0; t < 3; ++t) {
        thieves.emplace_back([&] {
            uint32_t id;
            for (;;) {
                switch (dq.steal(id)) {
                  case mc::WorkStealDeque::Steal::kOk:
                    taken[id].fetch_add(1);
                    break;
                  case mc::WorkStealDeque::Steal::kLost:
                    break;
                  case mc::WorkStealDeque::Steal::kEmpty:
                    return;
                }
            }
        });
    }
    uint32_t id;
    while (dq.pop(id))
        taken[id].fetch_add(1);
    for (auto &t : thieves)
        t.join();
    for (uint32_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(taken[i].load(), 1) << "task " << i;
}

} // namespace
} // namespace gpulitmus
