/**
 * @file
 * Tests for the CUDA layer: the Tab. 5 mapping, the distilled
 * case-study tests (which must agree with the hand-written library
 * versions), and the application clients.
 */

#include <gtest/gtest.h>

#include "cuda/apps.h"
#include "cuda/mapping.h"
#include "cuda/snippets.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "scenario/catalog.h"

namespace gpulitmus::cuda {
namespace {

TEST(Mapping, Table5Rows)
{
    auto table = mappingTable();
    ASSERT_EQ(table.size(), 10u);
    auto find = [&](const std::string &cuda) -> std::string {
        for (const auto &e : table) {
            if (e.cuda == cuda)
                return e.ptx;
        }
        return "";
    };
    EXPECT_EQ(find("atomicCAS"), "atom.cas");
    EXPECT_EQ(find("atomicExch"), "atom.exch");
    EXPECT_EQ(find("__threadfence"), "membar.gl");
    EXPECT_EQ(find("__threadfence_block"), "membar.cta");
    EXPECT_EQ(find("atomicAdd(...,1)"), "atom.inc");
    EXPECT_EQ(find("store to global int"), "st.cg");
    EXPECT_EQ(find("load from global int"), "ld.cg");
    EXPECT_EQ(find("store to volatile int"), "st.volatile");
    EXPECT_EQ(find("load from volatile int"), "ld.volatile");
}

TEST(Mapping, TranslateProducesTab5Opcodes)
{
    using ptx::Opcode;
    EXPECT_EQ(translate(CudaOp::AtomicCas, "r0", "m",
                        ptx::Operand::makeImm(0),
                        ptx::Operand::makeImm(1))
                  .op,
              Opcode::AtomCas);
    EXPECT_EQ(translate(CudaOp::Threadfence).scope, ptx::Scope::Gl);
    EXPECT_EQ(translate(CudaOp::ThreadfenceBlock).scope,
              ptx::Scope::Cta);
    auto store = translate(CudaOp::GlobalStore, "", "x",
                           ptx::Operand::makeImm(1));
    EXPECT_EQ(store.op, Opcode::St);
    EXPECT_EQ(store.cacheOp, ptx::CacheOp::Cg);
    auto vload = translate(CudaOp::VolatileLoad, "r1", "t");
    EXPECT_TRUE(vload.isVolatile);
}

/** The distilled tests must match the hand-written library versions
 * instruction for instruction. */
void
expectSameProgram(const litmus::Test &a, const litmus::Test &b)
{
    ASSERT_EQ(a.program.numThreads(), b.program.numThreads());
    for (int t = 0; t < a.program.numThreads(); ++t) {
        const auto &ia = a.program.threads[t].instrs;
        const auto &ib = b.program.threads[t].instrs;
        ASSERT_EQ(ia.size(), ib.size()) << a.name << " T" << t;
        for (size_t i = 0; i < ia.size(); ++i)
            EXPECT_EQ(ia[i].str(), ib[i].str())
                << a.name << " T" << t << " instr " << i;
    }
    EXPECT_EQ(a.condition.str(), b.condition.str());
    EXPECT_EQ(a.scopeTree, b.scopeTree);
}

TEST(Snippets, CasSlMatchesLibrary)
{
    expectSameProgram(distillCasSpinLock(false),
                      litmus::paperlib::casSl(false));
    expectSameProgram(distillCasSpinLock(true),
                      litmus::paperlib::casSl(true));
}

TEST(Snippets, DlbMpMatchesLibrary)
{
    expectSameProgram(distillDequeMp(false),
                      litmus::paperlib::dlbMp(false));
    expectSameProgram(distillDequeMp(true),
                      litmus::paperlib::dlbMp(true));
}

TEST(Snippets, DlbLbMatchesLibrary)
{
    expectSameProgram(distillDequeLb(false),
                      litmus::paperlib::dlbLb(false));
    expectSameProgram(distillDequeLb(true),
                      litmus::paperlib::dlbLb(true));
}

TEST(Snippets, SlFutureMatchesLibrary)
{
    expectSameProgram(distillHeYuLock(false),
                      litmus::paperlib::slFuture(false));
    expectSameProgram(distillHeYuLock(true),
                      litmus::paperlib::slFuture(true));
}

TEST(Snippets, SourcesMentionTheFences)
{
    EXPECT_EQ(casSpinLockSource(false).find("__threadfence"),
              std::string::npos);
    EXPECT_NE(casSpinLockSource(true).find("__threadfence"),
              std::string::npos);
    EXPECT_NE(heYuLockSource(false).find("*lockAddr = 0"),
              std::string::npos);
    EXPECT_NE(heYuLockSource(true).find("atomicExch"),
              std::string::npos);
}

// The clients are registry scenarios now: the "wrong result" is the
// test's forbidden condition, so the observation count of a plain
// harness run IS the wrong-result count (scenario/catalog.h). The
// exact (mc) verdicts for these scenarios live in test_scenario.cc.

harness::RunConfig
appConfig(uint64_t iterations)
{
    harness::RunConfig cfg;
    cfg.iterations = iterations;
    cfg.maxMicroSteps = 20000; // spin loops need headroom
    return cfg;
}

TEST(Apps, WrappersEqualRegistryScenarios)
{
    EXPECT_EQ(dotProductTest(3, true).str(),
              scenario::spinlockDotProduct(3, true).str());
    EXPECT_EQ(dotProductTest(4, false).str(),
              scenario::spinlockDotProduct(4, false).str());
    EXPECT_EQ(workStealingTest(false).str(),
              scenario::workStealingDeque(false).str());
    EXPECT_EQ(workStealingTest(true).str(),
              scenario::workStealingDeque(true).str());
}

TEST(Apps, DotProductWrongWithoutFences)
{
    litmus::Histogram buggy = harness::run(
        sim::chip("TesC"), dotProductTest(3, false), appConfig(4000));
    EXPECT_GT(buggy.observed(), 0u);
    EXPECT_LT(buggy.observed(), buggy.total()); // mostly right
}

TEST(Apps, DotProductCorrectWithFences)
{
    litmus::Histogram fixed = harness::run(
        sim::chip("TesC"), dotProductTest(3, true), appConfig(4000));
    EXPECT_EQ(fixed.observed(), 0u);
}

TEST(Apps, DotProductCorrectOnMaxwellEitherWay)
{
    litmus::Histogram hist = harness::run(
        sim::chip("GTX7"), dotProductTest(3, false), appConfig(3000));
    EXPECT_EQ(hist.observed(), 0u);
}

TEST(Apps, WorkStealingLosesTasksWithoutFences)
{
    litmus::Histogram buggy =
        harness::run(sim::chip("Titan"), workStealingTest(false),
                     appConfig(30000));
    EXPECT_GT(buggy.observed(), 0u);
    litmus::Histogram fixed =
        harness::run(sim::chip("Titan"), workStealingTest(true),
                     appConfig(10000));
    EXPECT_EQ(fixed.observed(), 0u);
}

} // namespace
} // namespace gpulitmus::cuda
