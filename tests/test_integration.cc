/**
 * @file
 * Integration tests over the on-disk litmus corpus: every file in
 * litmus-tests/ must parse, print-reparse stably, run on the
 * simulator, and model-check — and the expected verdicts hold:
 * ~exists files are never observed and are forbidden by the PTX
 * model; exists files are allowed by it.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cat/models.h"
#include "harness/campaign.h"
#include "litmus/parser.h"
#include "model/checker.h"

#ifndef GPULITMUS_SOURCE_DIR
#define GPULITMUS_SOURCE_DIR "."
#endif

namespace gpulitmus {
namespace {

const char *kCorpus[] = {
    "corr.litmus",        "mp.litmus",
    "mp-membar.gl.litmus", "sb.litmus",
    "lb.litmus",          "lb-membar.ctas.litmus",
    "mp-volatile.litmus", "cas-sl.litmus",
    "mp-deps.litmus",     "corr-l2-l1.litmus",
    // Generated scoped variants (gpulitmus gen): intra-CTA mp/lb/sb/
    // coRR/2+2w, inter-CTA 2+2w and wse/rfe chains missing from the
    // hand corpus, plus the scoped-model signature mp+membar.ctas.
    "PodWW+Rfe-cta+PodRR+Fre-cta.litmus",
    "PodRW+Rfe-cta+PodRW+Rfe-cta.litmus",
    "PodWR+Fre-cta+PodWR+Fre-cta.litmus",
    "PodWW+Wse-dev+PodWW+Wse-dev.litmus",
    "PodWW+Wse-cta+PodWW+Wse-cta.litmus",
    "F.cta-dWW+Rfe-dev+F.cta-dRR+Fre-dev.litmus",
    "PodWW+Wse-dev+PodWR+Fre-dev.litmus",
    "Rfe-cta+PosRR+Fre-cta.litmus",
    "Wse-dev+Rfe-cta+PosRR+Fre-dev.litmus",
    "Rfe-dev+PosRR+Fre-cta+Wse-dev.litmus",
};

std::string
readFile(const std::string &name)
{
    std::string path =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class Corpus : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Corpus, ParsesAndRoundTrips)
{
    litmus::ParseError err;
    auto test = litmus::parseTest(readFile(GetParam()), &err);
    ASSERT_TRUE(test.has_value()) << GetParam() << ": " << err.message;

    auto reparsed = litmus::parseTest(test->str(), &err);
    ASSERT_TRUE(reparsed.has_value())
        << GetParam() << " reprint: " << err.message;
    EXPECT_EQ(reparsed->program.numThreads(),
              test->program.numThreads());
    EXPECT_EQ(reparsed->scopeTree, test->scopeTree);
    EXPECT_EQ(reparsed->condition.str(), test->condition.str());
}

TEST_P(Corpus, RunsAndRespectsQuantifier)
{
    auto test = litmus::parseTest(readFile(GetParam()));
    ASSERT_TRUE(test.has_value());
    harness::RunConfig cfg;
    cfg.iterations = 3000;
    litmus::Histogram hist = harness::run(sim::chip("Titan"), *test,
                                          cfg);
    EXPECT_EQ(hist.total(), 3000u);
    if (test->quantifier == litmus::Quantifier::NotExists) {
        EXPECT_EQ(hist.observed(), 0u)
            << GetParam() << ": forbidden outcome observed";
    }
}

TEST_P(Corpus, ModelVerdictMatchesQuantifier)
{
    auto test = litmus::parseTest(readFile(GetParam()));
    ASSERT_TRUE(test.has_value());
    // The corpus is curated so the PTX model's verdict is "Ok" for
    // every file: exists files are allowed, ~exists files forbidden.
    model::Checker checker(cat::models::ptx());
    model::Verdict v = checker.check(*test);
    EXPECT_EQ(v.verdict, "Ok") << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Files, Corpus, ::testing::ValuesIn(kCorpus),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace gpulitmus
