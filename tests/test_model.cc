/**
 * @file
 * Semantic tests of the models against the paper's claims:
 *
 * - SC forbids all the weak idioms; the PTX model allows exactly the
 *   behaviours the paper observes on hardware.
 * - Fence/scope interaction: membar.gl forbids inter-CTA mp, while
 *   membar.cta does not (Fig. 3's Titan row is sound!).
 * - The Sec. 6 counterexample: the operational baseline forbids
 *   inter-CTA lb+membar.ctas, the PTX model allows it.
 * - The distilled programming-assumption tests (Figs. 7, 8, 9, 11)
 *   are allowed without fences and forbidden with them.
 */

#include <gtest/gtest.h>

#include "cat/models.h"
#include "litmus/library.h"
#include "litmus/parser.h"
#include "model/baseline.h"
#include "model/checker.h"

namespace gpulitmus::model {
namespace {

namespace paperlib = litmus::paperlib;
using ptx::Scope;

bool
allowedBy(const cat::Model &m, const litmus::Test &t)
{
    return Checker(m).check(t).conditionSatisfiable;
}

TEST(ScModel, ForbidsAllWeakIdioms)
{
    const cat::Model &sc = cat::models::sc();
    EXPECT_FALSE(allowedBy(sc, paperlib::mp()));
    EXPECT_FALSE(allowedBy(sc, paperlib::sb()));
    EXPECT_FALSE(allowedBy(sc, paperlib::lb()));
    EXPECT_FALSE(allowedBy(sc, paperlib::coRR()));
}

TEST(TsoModel, AllowsSbForbidsMp)
{
    const cat::Model &tso = cat::models::tso();
    EXPECT_TRUE(allowedBy(tso, paperlib::sb()));
    EXPECT_FALSE(allowedBy(tso, paperlib::mp()));
    EXPECT_FALSE(allowedBy(tso, paperlib::lb()));
}

TEST(PtxModel, AllowsWeakIdiomsWithoutFences)
{
    const cat::Model &ptx = cat::models::ptx();
    EXPECT_TRUE(allowedBy(ptx, paperlib::mp()));
    EXPECT_TRUE(allowedBy(ptx, paperlib::sb()));
    EXPECT_TRUE(allowedBy(ptx, paperlib::lb()));
    EXPECT_TRUE(allowedBy(ptx, paperlib::coRR()));
}

TEST(PtxModel, GlFenceForbidsInterCtaMp)
{
    const cat::Model &ptx = cat::models::ptx();
    EXPECT_FALSE(allowedBy(ptx, paperlib::mp(Scope::Gl)));
    EXPECT_FALSE(allowedBy(ptx, paperlib::mp(Scope::Sys)));
}

TEST(PtxModel, CtaFenceDoesNotOrderAcrossCtas)
{
    // The heart of the scoped model: membar.cta gives no inter-CTA
    // ordering, so mp+membar.ctas stays allowed inter-CTA but is
    // forbidden intra-CTA.
    const cat::Model &ptx = cat::models::ptx();
    EXPECT_TRUE(allowedBy(ptx, paperlib::mp(Scope::Cta, true)));
    EXPECT_FALSE(allowedBy(ptx, paperlib::mp(Scope::Cta, false)));
}

TEST(PtxModel, FencesForbidSbAndLbAtGlScope)
{
    const cat::Model &ptx = cat::models::ptx();
    EXPECT_FALSE(allowedBy(ptx, paperlib::sb(Scope::Gl)));
    EXPECT_FALSE(allowedBy(ptx, paperlib::lb(Scope::Gl)));
}

TEST(PtxModel, CoRRStaysAllowedUnderFences)
{
    // coRR is a same-location RR pair: the llh relaxation means even
    // strong fences... actually a fence *between* the reads does
    // order them (fence edges are in rmo). The unfenced test stays
    // allowed; Fig. 4's fence column behaviour is a cache effect the
    // model sidesteps by assuming .cg accesses (Sec. 5.5).
    const cat::Model &ptx = cat::models::ptx();
    EXPECT_TRUE(allowedBy(ptx, paperlib::coRR()));
}

TEST(PtxModel, Sec6Counterexample)
{
    // lb+membar.ctas inter-CTA: allowed by the paper's model
    // (observed on Titan!), forbidden by the operational baseline.
    litmus::Test t = paperlib::lbMembarCtas();
    EXPECT_TRUE(allowedBy(cat::models::ptx(), t));
    EXPECT_FALSE(allowedBy(operationalBaseline(), t));
}

TEST(PtxModel, NoThinAirHolds)
{
    // lb with address dependencies on both sides must be forbidden.
    litmus::Test t =
        litmus::TestBuilder("lb+deps")
            .global("x", 0)
            .global("y", 0)
            .regLoc(0, "r4", "y")
            .regLoc(1, "r4", "x")
            .thread("ld.cg r1,[x]; and.b32 r2,r1,0x80000000;"
                    "cvt.u64.u32 r3,r2; add.u64 r4,r4,r3;"
                    "st.cg [r4],1")
            .thread("ld.cg r1,[y]; and.b32 r2,r1,0x80000000;"
                    "cvt.u64.u32 r3,r2; add.u64 r4,r4,r3;"
                    "st.cg [r4],1")
            .interCta()
            .exists("0:r1=1 /\\ 1:r1=1")
            .build();
    EXPECT_FALSE(allowedBy(cat::models::ptx(), t));
}

TEST(PtxModel, DlbTestsWeakWithoutFencesForbiddenWith)
{
    const cat::Model &ptx = cat::models::ptx();
    EXPECT_TRUE(allowedBy(ptx, paperlib::dlbMp(false)));
    EXPECT_FALSE(allowedBy(ptx, paperlib::dlbMp(true)));
    EXPECT_TRUE(allowedBy(ptx, paperlib::dlbLb(false)));
    EXPECT_FALSE(allowedBy(ptx, paperlib::dlbLb(true)));
}

TEST(PtxModel, SpinLockTests)
{
    const cat::Model &ptx = cat::models::ptx();
    EXPECT_TRUE(allowedBy(ptx, paperlib::casSl(false)));
    EXPECT_FALSE(allowedBy(ptx, paperlib::casSl(true)));
    EXPECT_TRUE(allowedBy(ptx, paperlib::slFuture(false)));
    EXPECT_FALSE(allowedBy(ptx, paperlib::slFuture(true)));
}

TEST(PtxModel, MpMembarGlsFixesTheCudaManualExample)
{
    EXPECT_FALSE(
        allowedBy(cat::models::ptx(), paperlib::mpMembarGls()));
}

TEST(Checker, VerdictFieldsPopulated)
{
    Checker checker(cat::models::ptx());
    Verdict v = checker.check(paperlib::mp());
    EXPECT_GT(v.numCandidates, 0u);
    EXPECT_GT(v.numAllowed, 0u);
    EXPECT_LE(v.numAllowed, v.numCandidates);
    EXPECT_TRUE(v.conditionSatisfiable);
    EXPECT_EQ(v.verdict, "Ok");
    ASSERT_TRUE(v.witness.has_value());
    EXPECT_FALSE(v.allowedKeys.empty());
}

TEST(Checker, ForbiddenWitnessNamesTheCheck)
{
    Checker checker(cat::models::ptx());
    Verdict v = checker.check(paperlib::mp(Scope::Gl));
    EXPECT_FALSE(v.conditionSatisfiable);
    ASSERT_TRUE(v.forbiddenWitness.has_value());
    // The cycle lives at gl scope.
    EXPECT_EQ(v.forbiddingCheck, "gl-constraint");
}

TEST(Checker, ScAllowsOnlyInterleavings)
{
    Checker checker(cat::models::sc());
    Verdict v = checker.check(paperlib::sb());
    // sb under SC: 3 outcomes (0,1), (1,0), (1,1); the (0,0) weak
    // outcome is forbidden.
    EXPECT_EQ(v.allowedKeys.size(), 3u);
    EXPECT_EQ(v.forbiddenKeys.size(), 1u);
}

TEST(Checker, SoundnessReportFlagsForbiddenObservation)
{
    litmus::Test t = paperlib::mp();
    Checker checker(cat::models::sc());
    Verdict v = checker.check(t);

    litmus::Histogram h(t);
    litmus::FinalState weak;
    weak.regs[{1, "r1"}] = 1;
    weak.regs[{1, "r2"}] = 0;
    h.record(weak);

    SoundnessReport report = checkSoundness(v, h);
    EXPECT_FALSE(report.sound);
    ASSERT_EQ(report.violations.size(), 1u);

    // The PTX model allows it: sound.
    Checker ptx_checker(cat::models::ptx());
    SoundnessReport ok = checkSoundness(ptx_checker.check(t), h);
    EXPECT_TRUE(ok.sound);
}

/** Model-inclusion sweep: SC-allowed ⊆ TSO-allowed ⊆ RMO-allowed and
 * RMO ⊆ PTX (scoping only weakens), on every library test. */
class ModelInclusion
    : public ::testing::TestWithParam<litmus::paperlib::NamedTest>
{
};

TEST_P(ModelInclusion, WeakerModelsAllowMore)
{
    const litmus::Test &t = GetParam().test;
    auto keys = [&](const cat::Model &m) {
        return Checker(m).check(t).allowedKeys;
    };
    auto sc_keys = keys(cat::models::sc());
    auto tso_keys = keys(cat::models::tso());
    auto rmo_keys = keys(cat::models::rmo());
    auto ptx_keys = keys(cat::models::ptx());
    EXPECT_TRUE(std::includes(tso_keys.begin(), tso_keys.end(),
                              sc_keys.begin(), sc_keys.end()));
    EXPECT_TRUE(std::includes(rmo_keys.begin(), rmo_keys.end(),
                              tso_keys.begin(), tso_keys.end()));
    EXPECT_TRUE(std::includes(ptx_keys.begin(), ptx_keys.end(),
                              rmo_keys.begin(), rmo_keys.end()));
}

TEST(EnumerationMemo, OneEnumerationServesEveryModel)
{
    // The hot path of a validation sweep: checking one test against N
    // models must enumerate its candidate executions once.
    clearEnumerationCache();
    EXPECT_EQ(enumerationCacheSize(), 0u);

    litmus::Test test = paperlib::mp();
    Verdict first = Checker(cat::models::ptx()).check(test);
    EXPECT_EQ(enumerationCacheSize(), 1u);
    Verdict second = Checker(cat::models::sc()).check(test);
    Verdict third = Checker(operationalBaseline()).check(test);
    EXPECT_EQ(enumerationCacheSize(), 1u);

    // Distinct verdicts, same candidate set.
    EXPECT_EQ(first.numCandidates, second.numCandidates);
    EXPECT_EQ(second.numCandidates, third.numCandidates);
    EXPECT_TRUE(first.conditionSatisfiable);  // ptx allows weak mp
    EXPECT_FALSE(second.conditionSatisfiable); // sc forbids it

    // A different test (or different enumerator options) is a new
    // entry, not a collision.
    Checker(cat::models::ptx()).check(paperlib::sb());
    EXPECT_EQ(enumerationCacheSize(), 2u);
    axiom::EnumeratorOptions opts;
    opts.maxValuesPerLoc = 8;
    Checker(cat::models::ptx(), opts).check(test);
    EXPECT_EQ(enumerationCacheSize(), 3u);

    clearEnumerationCache();
    EXPECT_EQ(enumerationCacheSize(), 0u);
}

TEST(EnumerationMemo, MemoisedVerdictsMatchFreshOnes)
{
    clearEnumerationCache();
    litmus::Test test = paperlib::lbMembarCtas();
    Verdict cold = Checker(cat::models::ptx()).check(test);
    Verdict warm = Checker(cat::models::ptx()).check(test);
    EXPECT_EQ(cold.numCandidates, warm.numCandidates);
    EXPECT_EQ(cold.numAllowed, warm.numAllowed);
    EXPECT_EQ(cold.allowedKeys, warm.allowedKeys);
    EXPECT_EQ(cold.verdict, warm.verdict);
}

TEST(ModelScope, CaVolatileAndLoopedTestsAreOutsideTheModelScope)
{
    EXPECT_TRUE(inModelScope(paperlib::mp()));
    EXPECT_TRUE(inModelScope(paperlib::lbMembarCtas()));
    EXPECT_FALSE(inModelScope(paperlib::mpVolatile()));
    EXPECT_FALSE(inModelScope(paperlib::mpL1(std::nullopt)));
    EXPECT_FALSE(inModelScope(paperlib::coRRL2L1(std::nullopt)));

    // Spin loops (branches): the axiomatic side enumerates finite
    // executions only, so looped scenarios are out of scope too.
    auto spin = litmus::parseTest(R"(GPU_PTX spin
{global x=0;}
 T0              | T1                  ;
 st.cg.s32 [x],1 | LOOP:               ;
                 | ld.cg.s32 r1,[x]    ;
                 | setp.eq.s32 p0,r1,0 ;
                 | @p0 bra LOOP        ;
ScopeTree(grid(cta((warp T0)) cta((warp T1))))
exists ((1:r1=1))
)");
    ASSERT_TRUE(spin.has_value());
    EXPECT_FALSE(inModelScope(*spin));
}

INSTANTIATE_TEST_SUITE_P(
    PaperTests, ModelInclusion,
    ::testing::ValuesIn(litmus::paperlib::allTests()),
    [](const ::testing::TestParamInfo<litmus::paperlib::NamedTest>
           &info) {
        std::string name = info.param.id;
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace gpulitmus::model
