/**
 * @file
 * Tests for the exhaustive schedule explorer (mc/) and its eval-layer
 * integration:
 *
 * - the ChoicePoint refactor left the sampling machine bit-identical
 *   (golden histograms captured from the pre-refactor simulator);
 * - the explorer computes exact reachable sets that agree with the
 *   PTX model and with the sampler;
 * - sleep sets and state caching are pure pruning (the reachable set
 *   is invariant under every on/off combination);
 * - budgets degrade to sound bounded results;
 * - McBackend/eval::Engine/ConformanceSink upgrade imprecise cells
 *   to rare/unreachable/bounded verdicts.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cat/models.h"
#include "eval/backend.h"
#include "harness/campaign.h"
#include "litmus/parser.h"
#include "mc/explorer.h"
#include "model/checker.h"

#ifndef GPULITMUS_SOURCE_DIR
#define GPULITMUS_SOURCE_DIR "."
#endif

namespace gpulitmus {
namespace {

litmus::Test
loadCorpus(const std::string &name)
{
    std::string path =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    auto test = litmus::parseTest(ss.str());
    EXPECT_TRUE(test.has_value()) << path;
    return *test;
}

mc::ExploreResult
explore(const std::string &corpus_file, const std::string &chip,
        int column, mc::ExploreOptions opts = {})
{
    litmus::Test test = loadCorpus(corpus_file);
    opts.machine.inc = sim::Incantations::fromColumn(column);
    mc::Explorer explorer(sim::chip(chip), test, opts);
    return explorer.explore();
}

// ---------------------------------------------------------------------
// ChoicePoint refactor: the sampler is bit-identical to the
// pre-refactor machine. The expected values are golden histograms
// captured from the seed (pre-ChoiceProvider) build at seed 12345.
// ---------------------------------------------------------------------

uint64_t
countOf(const litmus::Histogram &hist, const std::string &key)
{
    auto it = hist.counts().find(key);
    return it == hist.counts().end() ? 0 : it->second;
}

TEST(ChoiceRefactor, SamplerBitIdenticalToGoldenMp)
{
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::RunConfig cfg;
    cfg.iterations = 5000;
    cfg.seed = 12345;
    cfg.inc = sim::Incantations::fromColumn(16);
    litmus::Histogram hist =
        harness::run(sim::chip("Titan"), mp, cfg);
    EXPECT_EQ(countOf(hist, "1:r1=0; 1:r2=0;"), 1899u);
    EXPECT_EQ(countOf(hist, "1:r1=0; 1:r2=1;"), 1652u);
    EXPECT_EQ(countOf(hist, "1:r1=1; 1:r2=0;"), 123u);
    EXPECT_EQ(countOf(hist, "1:r1=1; 1:r2=1;"), 1326u);
}

TEST(ChoiceRefactor, SamplerBitIdenticalToGoldenAcrossColumns)
{
    litmus::Test mp = loadCorpus("mp.litmus");
    const struct
    {
        int column;
        uint64_t observed;
    } golden[] = {{1, 0}, {6, 16}, {8, 72}, {12, 157}, {16, 123}};
    for (const auto &g : golden) {
        harness::RunConfig cfg;
        cfg.iterations = 5000;
        cfg.seed = 12345;
        cfg.inc = sim::Incantations::fromColumn(g.column);
        litmus::Histogram hist =
            harness::run(sim::chip("Titan"), mp, cfg);
        EXPECT_EQ(hist.observed(), g.observed)
            << "column " << g.column;
    }
}

TEST(ChoiceRefactor, SamplerBitIdenticalToGoldenOtherTests)
{
    const struct
    {
        const char *file;
        uint64_t observed;
    } golden[] = {{"sb.litmus", 174},
                  {"corr.litmus", 515},
                  {"lb.litmus", 31},
                  {"cas-sl.litmus", 17},
                  {"corr-l2-l1.litmus", 3}};
    for (const auto &g : golden) {
        litmus::Test test = loadCorpus(g.file);
        harness::RunConfig cfg;
        cfg.iterations = 5000;
        cfg.seed = 12345;
        cfg.inc = sim::Incantations::fromColumn(16);
        litmus::Histogram hist =
            harness::run(sim::chip("Titan"), test, cfg);
        EXPECT_EQ(hist.observed(), g.observed) << g.file;
    }
}

TEST(ChoiceRefactor, RngChoiceMatchesRawRngDraws)
{
    // One pick()/chance() consumes exactly one below()/chance().
    Rng a(7), b(7);
    sim::RngChoice choice(a);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(choice.pick(sim::ChoiceKind::Schedule, 7),
                  b.below(7));
        EXPECT_EQ(choice.chance(sim::ChoiceKind::CommitBypass, 0.4),
                  b.chance(0.4));
    }
    EXPECT_EQ(choice.delayBump(), 2 + static_cast<int>(b.below(4)));
}

// ---------------------------------------------------------------------
// Explorer: exact reachable sets.
// ---------------------------------------------------------------------

TEST(Explorer, MpTitanReachesExactlyThePtxAllowedSet)
{
    mc::ExploreResult r = explore("mp.litmus", "Titan", 16);
    ASSERT_TRUE(r.complete);
    // The PR-3 pruning anchor: checkpointing and digest keys must
    // not change what gets explored, only how fast.
    EXPECT_EQ(r.stats.replays, 4400u);
    litmus::Test mp = loadCorpus("mp.litmus");
    model::Verdict v = model::Checker(cat::models::ptx()).check(mp);
    std::set<std::string> reached;
    for (const auto &[key, weight] : r.finals) {
        EXPECT_GT(weight, 0u);
        reached.insert(key);
    }
    EXPECT_EQ(reached, v.allowedKeys);
    // The weak outcome is reachable and satisfies the condition.
    EXPECT_TRUE(r.satisfying.count("1:r1=1; 1:r2=0;"));
    EXPECT_EQ(r.verdict(mp), "Ok");
}

TEST(Explorer, StrongChipCannotReachWeakMp)
{
    // GTX5's machine has no engaged reordering for inter-CTA mp: the
    // weak outcome is *provably* unreachable, not merely unsampled.
    mc::ExploreResult r = explore("mp.litmus", "GTX5", 16);
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(r.finals.size(), 3u);
    EXPECT_FALSE(r.reachable("1:r1=1; 1:r2=0;"));
    // The PTX model still allows it: model slack, demonstrated
    // exactly rather than statistically.
    litmus::Test mp = loadCorpus("mp.litmus");
    model::Verdict v = model::Checker(cat::models::ptx()).check(mp);
    EXPECT_TRUE(v.allowedKeys.count("1:r1=1; 1:r2=0;"));
}

TEST(Explorer, IncantationsGateTheReachableSet)
{
    // Column 1 (no incantations) never engages Titan's reordering
    // machinery; column 16 does. Exactly as Tab. 6 samples it.
    mc::ExploreResult plain = explore("mp.litmus", "Titan", 1);
    ASSERT_TRUE(plain.complete);
    EXPECT_FALSE(plain.reachable("1:r1=1; 1:r2=0;"));
    mc::ExploreResult full = explore("mp.litmus", "Titan", 16);
    ASSERT_TRUE(full.complete);
    EXPECT_TRUE(full.reachable("1:r1=1; 1:r2=0;"));
}

TEST(Explorer, SamplerNeverEscapesTheExactSet)
{
    // 2000 sampled runs all land inside the explored reachable set —
    // the cross-engine consistency the ConformanceSink also checks.
    for (const char *file : {"mp.litmus", "sb.litmus", "lb.litmus",
                             "cas-sl.litmus"}) {
        litmus::Test test = loadCorpus(file);
        mc::ExploreResult r = explore(file, "Titan", 16);
        ASSERT_TRUE(r.complete) << file;
        harness::RunConfig cfg;
        cfg.iterations = 2000;
        cfg.inc = sim::Incantations::fromColumn(16);
        litmus::Histogram hist =
            harness::run(sim::chip("Titan"), test, cfg);
        for (const auto &[key, count] : hist.counts()) {
            if (count > 0) {
                EXPECT_TRUE(r.reachable(key))
                    << file << ": sampled '" << key
                    << "' escaped the exploration";
            }
        }
    }
}

TEST(Explorer, PruningIsInvisibleInTheReachableSet)
{
    // Sleep sets and state caching are pure pruning: every on/off
    // combination reaches the same final states. (The unpruned tree
    // is big; column 6 keeps the raw enumeration CI-sized.)
    for (const char *file : {"mp.litmus", "sb.litmus"}) {
        std::set<std::string> base;
        uint64_t base_replays = 0;
        for (int mode = 0; mode < 4; ++mode) {
            mc::ExploreOptions opts;
            opts.sleepSets = mode & 1;
            opts.stateCache = mode & 2;
            opts.maxReplays = 4u << 20;
            mc::ExploreResult r = explore(file, "Titan", 6, opts);
            ASSERT_TRUE(r.complete) << file << " mode " << mode;
            std::set<std::string> keys;
            for (const auto &[key, weight] : r.finals)
                keys.insert(key);
            if (mode == 0) {
                base = keys;
                base_replays = r.stats.replays;
            } else {
                EXPECT_EQ(keys, base) << file << " mode " << mode;
            }
            // Full pruning must not exceed the unpruned effort.
            if (mode == 3) {
                EXPECT_LE(r.stats.replays, base_replays) << file;
            }
        }
    }
}

TEST(Explorer, BudgetDegradesToSoundBoundedResult)
{
    mc::ExploreOptions bounded;
    bounded.maxReplays = 40;
    mc::ExploreResult partial =
        explore("mp.litmus", "Titan", 16, bounded);
    EXPECT_FALSE(partial.complete);
    EXPECT_FALSE(partial.finals.empty());

    mc::ExploreResult full = explore("mp.litmus", "Titan", 16);
    ASSERT_TRUE(full.complete);
    // Sound lower bound: everything the bounded search reached is
    // genuinely reachable.
    for (const auto &[key, weight] : partial.finals)
        EXPECT_TRUE(full.reachable(key)) << key;
}

TEST(Explorer, DeterministicAcrossRuns)
{
    mc::ExploreResult a = explore("lb.litmus", "Titan", 16);
    mc::ExploreResult b = explore("lb.litmus", "Titan", 16);
    EXPECT_EQ(a.finals, b.finals);
    EXPECT_EQ(a.stats.replays, b.stats.replays);
    EXPECT_EQ(a.stats.stateCuts, b.stats.stateCuts);
    EXPECT_EQ(a.stats.sleepSkips, b.stats.sleepSkips);
}

TEST(Explorer, CheckpointingIsInvisibleInTraversalAndResults)
{
    // Checkpoint resume and digest keys are pure wall-clock
    // machinery: all four on/off combinations must traverse the
    // identical tree — same reachable sets, same replay counts, same
    // pruning statistics, same completeness.
    for (const char *file :
         {"mp.litmus", "sb.litmus", "corr.litmus", "cas-sl.litmus"}) {
        mc::ExploreResult base;
        for (int mode = 0; mode < 4; ++mode) {
            mc::ExploreOptions opts;
            opts.checkpoints = mode & 1;
            opts.debugStateKeys = mode & 2;
            mc::ExploreResult r = explore(file, "Titan", 16, opts);
            if (mode == 0) {
                base = r;
                continue;
            }
            EXPECT_EQ(r.finals, base.finals) << file << " " << mode;
            EXPECT_EQ(r.satisfying, base.satisfying)
                << file << " " << mode;
            EXPECT_EQ(r.complete, base.complete)
                << file << " " << mode;
            EXPECT_EQ(r.stats.replays, base.stats.replays)
                << file << " " << mode;
            EXPECT_EQ(r.stats.choicePoints, base.stats.choicePoints)
                << file << " " << mode;
            EXPECT_EQ(r.stats.stateCuts, base.stats.stateCuts)
                << file << " " << mode;
            EXPECT_EQ(r.stats.sleepSkips, base.stats.sleepSkips)
                << file << " " << mode;
            EXPECT_EQ(r.stats.distinctStates,
                      base.stats.distinctStates)
                << file << " " << mode;
            EXPECT_EQ(r.stats.peakDepth, base.stats.peakDepth)
                << file << " " << mode;
        }
    }
}

TEST(Explorer, HashKeysAgreeWithStringKeysOverTheFullCorpus)
{
    // The 128-bit digest keys (fast path) and the PR-3 string keys
    // (debug path) must drive identical explorations over every
    // corpus test — the cross-check the debugStateKeys flag exists
    // for. Budget-capped so pathological imports stay CI-sized;
    // bounded results must agree too.
    namespace fs = std::filesystem;
    std::string dir =
        std::string(GPULITMUS_SOURCE_DIR) + "/litmus-tests";
    size_t checked = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".litmus")
            continue;
        std::string file = entry.path().filename().string();
        mc::ExploreOptions fast;
        fast.maxReplays = 200000;
        mc::ExploreOptions debug = fast;
        debug.debugStateKeys = true;
        mc::ExploreResult a = explore(file, "Titan", 16, fast);
        mc::ExploreResult b = explore(file, "Titan", 16, debug);
        EXPECT_EQ(a.finals, b.finals) << file;
        EXPECT_EQ(a.satisfying, b.satisfying) << file;
        EXPECT_EQ(a.complete, b.complete) << file;
        EXPECT_EQ(a.stats.replays, b.stats.replays) << file;
        EXPECT_EQ(a.stats.stateCuts, b.stats.stateCuts) << file;
        EXPECT_EQ(a.stats.distinctStates, b.stats.distinctStates)
            << file;
        ++checked;
    }
    // The corpus ships 20 tests; make sure the sweep saw them.
    EXPECT_GE(checked, 20u);
}

TEST(Explorer, SpinLoopTerminatesViaStateCache)
{
    // An unbounded spin has an infinite choice tree; revisit cuts
    // close it. The weak outcome (load of y reordered before the
    // spin's last x read) stays reachable under stress.
    const char *text = R"(GPU_PTX spin
{global x=0; global y=0;}
 T0              | T1                  ;
 st.cg.s32 [y],1 | LOOP:               ;
 st.cg.s32 [x],1 | ld.cg.s32 r1,[x]    ;
                 | setp.eq.s32 p0,r1,0 ;
                 | @p0 bra LOOP        ;
                 | ld.cg.s32 r2,[y]    ;
ScopeTree(grid(cta((warp T0)) cta((warp T1))))
exists ((1:r2=0))
)";
    auto test = litmus::parseTest(text);
    ASSERT_TRUE(test.has_value());
    mc::ExploreOptions opts;
    opts.machine.inc = sim::Incantations::fromColumn(16);
    mc::ExploreResult r =
        mc::Explorer(sim::chip("Titan"), *test, opts).explore();
    // Far below the budget: the cycle cuts terminate the search.
    EXPECT_LT(r.stats.replays, 100000u);
    EXPECT_TRUE(r.reachable("1:r2=0;"));
    EXPECT_TRUE(r.reachable("1:r2=1;"));
    // Loop states dedup across fetch-counter values, which trades
    // the exactness claim away: a spin test is honestly "bounded".
    EXPECT_FALSE(r.complete);
}

// ---------------------------------------------------------------------
// Eval integration: McBackend, job keys, conformance upgrades.
// ---------------------------------------------------------------------

TEST(McBackend, RegistryResolvesMcAndAlias)
{
    auto mc_backend = eval::backendByName("mc");
    ASSERT_TRUE(mc_backend);
    EXPECT_EQ(mc_backend->name(), "mc");
    auto alias = eval::backendByName("exhaustive");
    ASSERT_TRUE(alias);
    EXPECT_EQ(alias->name(), "mc");
    // mc is not a model backend.
    std::string error;
    EXPECT_FALSE(eval::modelBackendByName("mc", &error));
    EXPECT_NE(error.find("not a model"), std::string::npos);
    // And it is advertised.
    auto names = eval::builtinBackendNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "mc"),
              names.end());
    auto models = eval::builtinModelNames();
    EXPECT_EQ(std::find(models.begin(), models.end(), "mc"),
              models.end());
}

TEST(McBackend, JobKeySemantics)
{
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::Job job;
    job.backend = harness::kMcBackend;
    job.chip = sim::chip("Titan");
    job.test = mp;
    EXPECT_TRUE(job.isMc());
    EXPECT_FALSE(job.isSim());
    EXPECT_EQ(job.displayLabel(), "mp@Titan#mc");

    // Deterministic search: the seed axis is excluded...
    harness::Job reseeded = job;
    reseeded.seed ^= 0xdeadbeef;
    EXPECT_EQ(job.key(), reseeded.key());
    // ...but chip and incantation shape the machine, and the budget
    // shapes completeness.
    harness::Job other_chip = job;
    other_chip.chip = sim::chip("GTX5");
    EXPECT_NE(job.key(), other_chip.key());
    harness::Job other_col = job;
    other_col.inc = sim::Incantations::fromColumn(3);
    EXPECT_NE(job.key(), other_col.key());
    harness::Job other_budget = job;
    other_budget.iterations = 42;
    EXPECT_EQ(job.key(), other_budget.key());
    EXPECT_NE(job.cacheKey(), other_budget.cacheKey());
}

TEST(McBackend, EngineRunsAndCachesMcJobs)
{
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::Job job;
    job.backend = harness::kMcBackend;
    job.chip = sim::chip("Titan");
    job.test = mp;
    job.inc = sim::Incantations::fromColumn(16);

    eval::Engine engine(eval::EngineOptions{2, true});
    auto first = engine.run({job});
    ASSERT_EQ(first.size(), 1u);
    ASSERT_TRUE(first[0].hasExact());
    EXPECT_FALSE(first[0].hasHist());
    EXPECT_TRUE(first[0].exact->complete);
    EXPECT_EQ(first[0].exact->finals.size(), 4u);
    EXPECT_FALSE(first[0].fromCache);

    auto second = engine.run({job});
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].fromCache);
    EXPECT_EQ(second[0].exact->finals, first[0].exact->finals);
    EXPECT_GE(engine.cacheHits(), 1u);
}

TEST(McBackend, CampaignOverBackendsMixesSimMcAndModels)
{
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::Campaign campaign;
    campaign.iterations(200);
    campaign.test(mp, "mp");
    campaign.overChips(std::vector<std::string>{"Titan", "GTX5"});
    campaign.overBackends({harness::kSimBackend,
                           harness::kMcBackend, "ptx"});
    auto jobs = campaign.jobs();
    ASSERT_EQ(jobs.size(), 6u);

    // The mc grid cells keep the sampling iteration count as their
    // replay budget — plenty here (mp completes in thousands).
    for (auto &job : jobs) {
        if (job.isMc())
            job.iterations = 1u << 20;
    }

    eval::ConformanceSink conformance;
    eval::Engine engine(eval::EngineOptions{2, true});
    engine.run(jobs, {&conformance});

    // 2 chips x 1 model verdict per chip cell (sim+exact collapse
    // into one upgraded cell per chip).
    ASSERT_EQ(conformance.cells().size(), 2u);
    EXPECT_EQ(conformance.unsoundCells(), 0u);
    EXPECT_EQ(conformance.inconsistentCells(), 0u);
    for (const auto &cell : conformance.cells())
        EXPECT_TRUE(cell.hasExact) << cell.chip;
}

TEST(Conformance, ImpreciseUpgradesToRareWithWeight)
{
    // 50 samples at this seed miss the weak mp outcome (golden:
    // observed 0/50), so sampling alone says "imprecise". The
    // exploration proves the outcome reachable: the verdict upgrades
    // to rare, carrying the explorer's path weight.
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::Job sim_job;
    sim_job.chip = sim::chip("Titan");
    sim_job.test = mp;
    sim_job.inc = sim::Incantations::fromColumn(16);
    sim_job.iterations = 50;
    sim_job.seed = 0x6c69;
    sim_job.label = "mp";

    harness::Job mc_job = sim_job;
    mc_job.backend = harness::kMcBackend;
    mc_job.iterations = 1u << 20;
    harness::Job model_job = sim_job;
    model_job.backend = "ptx";

    eval::ConformanceSink sink;
    eval::Engine engine(eval::EngineOptions{2, true});
    engine.run({sim_job, mc_job, model_job}, {&sink});

    ASSERT_EQ(sink.cells().size(), 1u);
    const eval::ConformanceCell &cell = sink.cells()[0];
    ASSERT_EQ(cell.kind, eval::Conformance::Rare)
        << "observed-but-unsampled precondition changed?";
    EXPECT_TRUE(cell.hasExact);
    EXPECT_TRUE(cell.exactComplete);
    ASSERT_FALSE(cell.rare.empty());
    bool weak_rare = false;
    for (const auto &[key, weight] : cell.rare) {
        if (key == "1:r1=1; 1:r2=0;") {
            weak_rare = true;
            EXPECT_GT(weight, 0u);
        }
    }
    EXPECT_TRUE(weak_rare);
    EXPECT_TRUE(cell.unobserved.empty());
    EXPECT_TRUE(cell.violations.empty());
    EXPECT_EQ(sink.rareCells(), 1u);
}

TEST(Conformance, ImpreciseUpgradesToUnreachableOnStrongChip)
{
    // GTX5 cannot produce weak mp at all: the allowed-but-unobserved
    // outcome upgrades to a definitive "unreachable".
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::Job sim_job;
    sim_job.chip = sim::chip("GTX5");
    sim_job.test = mp;
    sim_job.inc = sim::Incantations::fromColumn(16);
    sim_job.iterations = 400;
    sim_job.label = "mp";

    harness::Job mc_job = sim_job;
    mc_job.backend = harness::kMcBackend;
    mc_job.iterations = 1u << 20;
    harness::Job model_job = sim_job;
    model_job.backend = "ptx";

    eval::ConformanceSink sink;
    eval::Engine engine(eval::EngineOptions{2, true});
    engine.run({sim_job, mc_job, model_job}, {&sink});

    ASSERT_EQ(sink.cells().size(), 1u);
    const eval::ConformanceCell &cell = sink.cells()[0];
    EXPECT_EQ(cell.kind, eval::Conformance::Unreachable);
    ASSERT_FALSE(cell.unreachable.empty());
    EXPECT_EQ(cell.unreachable[0], "1:r1=1; 1:r2=0;");
    EXPECT_TRUE(cell.violations.empty());
    EXPECT_EQ(sink.unreachableCells(), 1u);
}

TEST(Conformance, BudgetExhaustionYieldsBoundedCell)
{
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::Job sim_job;
    sim_job.chip = sim::chip("GTX5");
    sim_job.test = mp;
    sim_job.inc = sim::Incantations::fromColumn(16);
    sim_job.iterations = 50;
    sim_job.seed = 0x6c69;
    sim_job.label = "mp";

    harness::Job mc_job = sim_job;
    mc_job.backend = harness::kMcBackend;
    mc_job.iterations = 5; // trip the budget immediately
    harness::Job model_job = sim_job;
    model_job.backend = "ptx";

    eval::ConformanceSink sink;
    eval::Engine engine(eval::EngineOptions{1, true});
    engine.run({sim_job, mc_job, model_job}, {&sink});

    ASSERT_EQ(sink.cells().size(), 1u);
    const eval::ConformanceCell &cell = sink.cells()[0];
    EXPECT_EQ(cell.kind, eval::Conformance::Bounded);
    EXPECT_TRUE(cell.hasExact);
    EXPECT_FALSE(cell.exactComplete);
    EXPECT_FALSE(cell.unobserved.empty());
}

TEST(Conformance, McOnlyCellsClassifyFromTheExactSet)
{
    // No sim histogram at all: the exploration is the observation.
    litmus::Test mp = loadCorpus("mp.litmus");
    harness::Job mc_job;
    mc_job.backend = harness::kMcBackend;
    mc_job.chip = sim::chip("Titan");
    mc_job.test = mp;
    mc_job.inc = sim::Incantations::fromColumn(16);
    mc_job.iterations = 1u << 20;
    mc_job.label = "mp";
    harness::Job model_job = mc_job;
    model_job.backend = "ptx";

    eval::ConformanceSink sink;
    eval::Engine engine(eval::EngineOptions{2, true});
    engine.run({mc_job, model_job}, {&sink});

    ASSERT_EQ(sink.cells().size(), 1u);
    const eval::ConformanceCell &cell = sink.cells()[0];
    // Titan reaches the full ptx-allowed set for mp: exact match.
    EXPECT_EQ(cell.kind, eval::Conformance::Sound);
    EXPECT_EQ(cell.runs, 0u);
    EXPECT_TRUE(cell.hasExact);
}

TEST(Conformance, ExactSetAgreesWithPtxOnCorpusSample)
{
    // The acceptance property in miniature: explorations of the
    // in-scope corpus on two chips produce no reachable-but-
    // forbidden state (0 unsound) and no sampling escapee.
    eval::ConformanceSink sink;
    eval::Engine engine(eval::EngineOptions{2, true});
    std::vector<harness::Job> jobs;
    for (const char *file :
         {"mp.litmus", "sb.litmus", "lb.litmus",
          "lb-membar.ctas.litmus", "mp-deps.litmus"}) {
        litmus::Test test = loadCorpus(file);
        for (const char *chip : {"Titan", "GTX7"}) {
            harness::Job mc_job;
            mc_job.backend = harness::kMcBackend;
            mc_job.chip = sim::chip(chip);
            mc_job.test = test;
            mc_job.inc = sim::Incantations::fromColumn(16);
            mc_job.iterations = 1u << 20;
            jobs.push_back(mc_job);
            harness::Job model_job = mc_job;
            model_job.backend = "ptx";
            jobs.push_back(model_job);
        }
    }
    auto results = engine.run(jobs, {&sink});
    for (const auto &r : results) {
        if (r.hasExact()) {
            EXPECT_TRUE(r.exact->complete) << r.label();
        }
    }
    EXPECT_EQ(sink.cells().size(), 10u);
    EXPECT_EQ(sink.unsoundCells(), 0u);
    EXPECT_EQ(sink.inconsistentCells(), 0u);
}

} // namespace
} // namespace gpulitmus
